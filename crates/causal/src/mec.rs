//! Markov-equivalence machinery: skeletons, v-structures, and the
//! equivalence test of Definition 1 in the paper (Verma & Pearl, 1990: two
//! DAGs are Markov equivalent iff they share skeleton and v-structures).

use crate::dag::DiGraph;
use std::collections::BTreeSet;

/// Undirected skeleton as a sorted set of `(min, max)` pairs.
pub fn skeleton(g: &DiGraph) -> BTreeSet<(usize, usize)> {
    let mut s = BTreeSet::new();
    for (i, j) in g.edges() {
        s.insert((i.min(j), i.max(j)));
    }
    s
}

/// V-structures `i -> k <- j` (with `i`, `j` non-adjacent), normalized so
/// `i < j`; returned as `(i, k, j)` triples.
pub fn v_structures(g: &DiGraph) -> BTreeSet<(usize, usize, usize)> {
    let skel = skeleton(g);
    let mut vs = BTreeSet::new();
    for k in 0..g.n() {
        let parents = g.parents(k);
        for (a, &i) in parents.iter().enumerate() {
            for &j in parents.iter().skip(a + 1) {
                let (lo, hi) = (i.min(j), i.max(j));
                if !skel.contains(&(lo, hi)) {
                    vs.insert((lo, k, hi));
                }
            }
        }
    }
    vs
}

/// Definition 1: same skeleton and same v-structures.
pub fn markov_equivalent(g1: &DiGraph, g2: &DiGraph) -> bool {
    g1.n() == g2.n() && skeleton(g1) == skeleton(g2) && v_structures(g1) == v_structures(g2)
}

/// A partially directed graph representing a Markov equivalence class:
/// compelled edges are directed, reversible edges undirected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpdag {
    pub n: usize,
    /// Directed (compelled) edges.
    pub directed: BTreeSet<(usize, usize)>,
    /// Undirected (reversible) edges, stored as `(min, max)`.
    pub undirected: BTreeSet<(usize, usize)>,
}

/// Build the CPDAG of a DAG: direct the v-structure edges, then apply the
/// first Meek rule repeatedly (enough for the graph sizes in this project;
/// the Markov-equivalence *test* above is exact regardless).
pub fn cpdag(g: &DiGraph) -> Cpdag {
    let skel = skeleton(g);
    let mut directed: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, k, j) in v_structures(g) {
        // v-structure i -> k <- j; both edges are compelled.
        directed.insert((i, k));
        directed.insert((j, k));
    }
    // Meek rule 1: if a -> b and b - c with a, c non-adjacent, orient b -> c.
    loop {
        let mut added = Vec::new();
        for &(a, b) in &directed {
            for c in 0..g.n() {
                if c == a || c == b {
                    continue;
                }
                let bc = (b.min(c), b.max(c));
                let ac = (a.min(c), a.max(c));
                if skel.contains(&bc)
                    && !skel.contains(&ac)
                    && !directed.contains(&(b, c))
                    && !directed.contains(&(c, b))
                {
                    added.push((b, c));
                }
            }
        }
        if added.is_empty() {
            break;
        }
        directed.extend(added);
    }
    let undirected: BTreeSet<(usize, usize)> = skel
        .iter()
        .filter(|&&(a, b)| !directed.contains(&(a, b)) && !directed.contains(&(b, a)))
        .copied()
        .collect();
    Cpdag { n: g.n(), directed, undirected }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_ignores_direction() {
        let g1 = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = DiGraph::from_edges(3, &[(1, 0), (2, 1)]);
        assert_eq!(skeleton(&g1), skeleton(&g2));
    }

    #[test]
    fn chain_and_fork_are_equivalent() {
        // 0 -> 1 -> 2, 0 <- 1 -> 2, 0 <- 1 <- 2 are all Markov equivalent.
        let chain = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let fork = DiGraph::from_edges(3, &[(1, 0), (1, 2)]);
        let rev = DiGraph::from_edges(3, &[(2, 1), (1, 0)]);
        assert!(markov_equivalent(&chain, &fork));
        assert!(markov_equivalent(&chain, &rev));
    }

    #[test]
    fn collider_is_not_equivalent_to_chain() {
        let chain = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let collider = DiGraph::from_edges(3, &[(0, 1), (2, 1)]);
        assert!(!markov_equivalent(&chain, &collider));
        assert_eq!(v_structures(&collider).len(), 1);
        assert!(v_structures(&chain).is_empty());
    }

    #[test]
    fn shielded_collider_is_not_a_v_structure() {
        // 0 -> 2 <- 1 with 0 -> 1: parents adjacent, so no v-structure.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2), (0, 1)]);
        assert!(v_structures(&g).is_empty());
    }

    #[test]
    fn equivalence_is_reflexive_and_symmetric() {
        let g = DiGraph::from_edges(4, &[(0, 1), (2, 1), (1, 3)]);
        assert!(markov_equivalent(&g, &g));
        let h = DiGraph::from_edges(4, &[(0, 1), (2, 1), (3, 1)]);
        assert_eq!(markov_equivalent(&g, &h), markov_equivalent(&h, &g));
    }

    #[test]
    fn cpdag_orients_v_structure_and_meek1() {
        // 0 -> 2 <- 1, 2 - 3 in skeleton via 2 -> 3.
        // V-structure compels 0->2, 1->2; Meek rule 1 then compels 2->3.
        let g = DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3)]);
        let c = cpdag(&g);
        assert!(c.directed.contains(&(0, 2)));
        assert!(c.directed.contains(&(1, 2)));
        assert!(c.directed.contains(&(2, 3)));
        assert!(c.undirected.is_empty());
    }

    #[test]
    fn cpdag_of_chain_is_fully_undirected() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let c = cpdag(&g);
        assert!(c.directed.is_empty());
        assert_eq!(c.undirected.len(), 2);
    }
}
