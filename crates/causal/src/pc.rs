//! The PC algorithm (Spirtes & Glymour) — the *constraint-based* causal
//! discovery family the paper contrasts with score-based methods (§IV).
//!
//! Implements PC-stable skeleton search with Gaussian conditional
//! independence tests (partial correlation + Fisher z-transform),
//! v-structure orientation from separating sets, and Meek rules 1–3.
//! Output is a CPDAG (compelled edges directed, reversible edges
//! undirected), comparable against NOTEARS via
//! [`crate::mec::markov_equivalent`] on any consistent DAG extension.

use crate::dag::DiGraph;
use crate::mec::Cpdag;
use causer_tensor::Matrix;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the PC run.
#[derive(Clone, Debug)]
pub struct PcConfig {
    /// Significance level of the CI test (edges are removed when the
    /// absolute z-statistic is below the `1 − α/2` normal quantile).
    pub alpha: f64,
    /// Largest conditioning-set size to try.
    pub max_condition_size: usize,
}

impl Default for PcConfig {
    fn default() -> Self {
        PcConfig { alpha: 0.05, max_condition_size: 3 }
    }
}

/// Result: the estimated CPDAG plus the separating sets found.
#[derive(Clone, Debug)]
pub struct PcResult {
    pub cpdag: Cpdag,
    /// For each removed pair `(i, j)` (i < j), the set that separated them.
    pub separating_sets: BTreeMap<(usize, usize), BTreeSet<usize>>,
    /// Number of CI tests performed.
    pub tests_run: usize,
}

/// Run PC-stable on an `n × d` data matrix.
pub fn pc(data: &Matrix, config: &PcConfig) -> PcResult {
    let n = data.rows();
    let d = data.cols();
    assert!(n > 3, "need more than 3 samples");
    let corr = correlation_matrix(data);
    // z-threshold for the two-sided test at level alpha.
    let z_crit = normal_quantile(1.0 - config.alpha / 2.0);

    // Adjacency of the evolving skeleton.
    let mut adj: Vec<BTreeSet<usize>> =
        (0..d).map(|i| (0..d).filter(|&j| j != i).collect()).collect();
    let mut sepsets: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    let mut tests_run = 0usize;

    for l in 0..=config.max_condition_size {
        // PC-stable: freeze the neighbourhoods for this level.
        let frozen = adj.clone();
        let mut to_remove: Vec<(usize, usize, BTreeSet<usize>)> = Vec::new();
        for i in 0..d {
            for &j in frozen[i].iter().filter(|&&j| j > i) {
                let mut candidates: Vec<usize> =
                    frozen[i].iter().copied().filter(|&k| k != j).collect();
                candidates.extend(frozen[j].iter().copied().filter(|&k| k != i));
                candidates.sort_unstable();
                candidates.dedup();
                if candidates.len() < l {
                    continue;
                }
                let mut found = None;
                for subset in subsets_of_size(&candidates, l) {
                    tests_run += 1;
                    let r = partial_correlation(&corr, i, j, &subset);
                    let z = fisher_z(r, n, subset.len());
                    if z.abs() < z_crit {
                        found = Some(subset.into_iter().collect::<BTreeSet<usize>>());
                        break;
                    }
                }
                if let Some(s) = found {
                    to_remove.push((i, j, s));
                }
            }
        }
        for (i, j, s) in to_remove {
            adj[i].remove(&j);
            adj[j].remove(&i);
            sepsets.insert((i, j), s);
        }
    }

    // Orient v-structures: for i - k - j with i, j non-adjacent and
    // k ∉ sepset(i, j), orient i -> k <- j.
    let mut directed: BTreeSet<(usize, usize)> = BTreeSet::new();
    for k in 0..d {
        let neigh: Vec<usize> = adj[k].iter().copied().collect();
        for (a, &i) in neigh.iter().enumerate() {
            for &j in neigh.iter().skip(a + 1) {
                if adj[i].contains(&j) {
                    continue; // shielded
                }
                let key = (i.min(j), i.max(j));
                let sep = sepsets.get(&key);
                if sep.map(|s| !s.contains(&k)).unwrap_or(false) {
                    directed.insert((i, k));
                    directed.insert((j, k));
                }
            }
        }
    }

    // Meek rules 1–3 to propagate orientations.
    let skeleton: BTreeSet<(usize, usize)> =
        (0..d).flat_map(|i| adj[i].iter().filter(move |&&j| j > i).map(move |&j| (i, j))).collect();
    meek_closure(d, &skeleton, &mut directed);

    let undirected: BTreeSet<(usize, usize)> = skeleton
        .iter()
        .filter(|&&(a, b)| !directed.contains(&(a, b)) && !directed.contains(&(b, a)))
        .copied()
        .collect();
    PcResult { cpdag: Cpdag { n: d, directed, undirected }, separating_sets: sepsets, tests_run }
}

/// Orient edges using Meek rules 1–3 until fixpoint.
fn meek_closure(
    d: usize,
    skeleton: &BTreeSet<(usize, usize)>,
    directed: &mut BTreeSet<(usize, usize)>,
) {
    let has_skel = |a: usize, b: usize| skeleton.contains(&(a.min(b), a.max(b)));
    loop {
        let mut added: Vec<(usize, usize)> = Vec::new();
        let is_directed =
            |dir: &BTreeSet<(usize, usize)>, a: usize, b: usize| dir.contains(&(a, b));
        let is_undirected = |dir: &BTreeSet<(usize, usize)>, a: usize, b: usize| {
            has_skel(a, b) && !dir.contains(&(a, b)) && !dir.contains(&(b, a))
        };
        for b in 0..d {
            for c in 0..d {
                if b == c || !is_undirected(directed, b, c) {
                    continue;
                }
                // Rule 1: a -> b, b - c, a and c non-adjacent => b -> c.
                for a in 0..d {
                    if a != c && is_directed(directed, a, b) && !has_skel(a, c) {
                        added.push((b, c));
                    }
                }
                // Rule 2: b -> a -> c and b - c => b -> c.
                for a in 0..d {
                    if a != b
                        && a != c
                        && is_directed(directed, b, a)
                        && is_directed(directed, a, c)
                    {
                        added.push((b, c));
                    }
                }
                // Rule 3: b - a1 -> c, b - a2 -> c, a1 and a2 non-adjacent
                // => b -> c.
                for a1 in 0..d {
                    for a2 in (a1 + 1)..d {
                        if a1 == b || a2 == b || a1 == c || a2 == c {
                            continue;
                        }
                        if is_undirected(directed, b, a1)
                            && is_undirected(directed, b, a2)
                            && is_directed(directed, a1, c)
                            && is_directed(directed, a2, c)
                            && !has_skel(a1, a2)
                        {
                            added.push((b, c));
                        }
                    }
                }
            }
        }
        let before = directed.len();
        for (a, b) in added {
            if !directed.contains(&(b, a)) {
                directed.insert((a, b));
            }
        }
        if directed.len() == before {
            break;
        }
    }
}

/// Pearson correlation matrix of the columns of `data`.
pub fn correlation_matrix(data: &Matrix) -> Matrix {
    let n = data.rows();
    let d = data.cols();
    let mut means = vec![0.0; d];
    for i in 0..n {
        for (j, m) in means.iter_mut().enumerate() {
            *m += data.get(i, j);
        }
    }

    for m in &mut means {
        *m /= n as f64;
    }
    let mut cov = Matrix::zeros(d, d);
    #[allow(clippy::needless_range_loop)] // upper-triangular accumulation
    for i in 0..n {
        for a in 0..d {
            let xa = data.get(i, a) - means[a];
            for b in a..d {
                let xb = data.get(i, b) - means[b];
                cov.set(a, b, cov.get(a, b) + xa * xb);
            }
        }
    }
    let mut corr = Matrix::eye(d);
    #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
    for a in 0..d {
        for b in (a + 1)..d {
            let denom = (cov.get(a, a) * cov.get(b, b)).sqrt();
            let r = if denom > 0.0 { cov.get(a, b) / denom } else { 0.0 };
            corr.set(a, b, r);
            corr.set(b, a, r);
        }
    }
    corr
}

/// Partial correlation of `i` and `j` given `cond`, via inversion of the
/// corresponding correlation submatrix (precision-matrix formula).
pub fn partial_correlation(corr: &Matrix, i: usize, j: usize, cond: &[usize]) -> f64 {
    if cond.is_empty() {
        return corr.get(i, j);
    }
    let mut vars = vec![i, j];
    vars.extend_from_slice(cond);
    let m = vars.len();
    let sub = Matrix::from_fn(m, m, |a, b| corr.get(vars[a], vars[b]));
    match invert(&sub) {
        Some(prec) => {
            let denom = (prec.get(0, 0) * prec.get(1, 1)).sqrt();
            if denom > 0.0 {
                -prec.get(0, 1) / denom
            } else {
                0.0
            }
        }
        None => 0.0, // singular: treat as independent
    }
}

/// Fisher z-statistic for a (partial) correlation with `n` samples and
/// conditioning-set size `k`.
pub fn fisher_z(r: f64, n: usize, k: usize) -> f64 {
    let r = r.clamp(-0.999_999, 0.999_999);
    let denom = (n as f64 - k as f64 - 3.0).max(1.0);
    0.5 * ((1.0 + r) / (1.0 - r)).ln() * denom.sqrt()
}

/// Standard normal quantile (Acklam's rational approximation).
#[allow(clippy::excessive_precision)] // published coefficients kept verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p in (0,1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Gauss–Jordan inversion with partial pivoting; `None` when singular.
pub fn invert(m: &Matrix) -> Option<Matrix> {
    assert_eq!(m.rows(), m.cols());
    let n = m.rows();
    let mut a = m.clone();
    let mut inv = Matrix::eye(n);
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if a.get(r, col).abs() > a.get(pivot, col).abs() {
                pivot = r;
            }
        }
        if a.get(pivot, col).abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            swap_rows(&mut a, pivot, col);
            swap_rows(&mut inv, pivot, col);
        }
        let p = a.get(col, col);
        for c in 0..n {
            a.set(col, c, a.get(col, c) / p);
            inv.set(col, c, inv.get(col, c) / p);
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a.get(r, col);
            if f == 0.0 {
                continue;
            }
            for c in 0..n {
                a.set(r, c, a.get(r, c) - f * a.get(col, c));
                inv.set(r, c, inv.get(r, c) - f * inv.get(col, c));
            }
        }
    }
    Some(inv)
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    for c in 0..m.cols() {
        let tmp = m.get(a, c);
        m.set(a, c, m.get(b, c));
        m.set(b, c, tmp);
    }
}

/// All subsets of `items` of exactly `size` elements.
fn subsets_of_size(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec(
        items: &[usize],
        size: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for idx in start..items.len() {
            current.push(items[idx]);
            rec(items, size, idx + 1, current, out);
            current.pop();
        }
    }
    rec(items, size, 0, &mut current, &mut out);
    out
}

/// Any consistent DAG extension of a CPDAG (orient undirected edges by node
/// order, which cannot create cycles when applied to a valid CPDAG of a
/// DAG). Used to compare PC output with DAG-valued learners.
pub fn cpdag_to_dag(c: &Cpdag) -> DiGraph {
    let mut g = DiGraph::empty(c.n);
    for &(a, b) in &c.directed {
        g.add_edge(a, b);
    }
    for &(a, b) in &c.undirected {
        // Orient low -> high unless it creates a cycle; otherwise flip.
        g.add_edge(a, b);
        if !g.is_dag() {
            g.remove_edge(a, b);
            g.add_edge(b, a);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_gen::{random_weights, sample_linear_sem};
    use crate::mec::{cpdag, markov_equivalent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sem_data(edges: &[(usize, usize)], d: usize, n: usize, seed: u64) -> (DiGraph, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = DiGraph::from_edges(d, edges);
        let w = random_weights(&mut rng, &dag, 1.0, 1.8);
        let x = sample_linear_sem(&mut rng, &w, &dag, n, 1.0);
        (dag, x)
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn invert_identity_and_known() {
        let i3 = Matrix::eye(3);
        assert_eq!(invert(&i3).unwrap(), i3);
        let m = Matrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]);
        let inv = invert(&m).unwrap();
        let prod = m.matmul(&inv);
        for (a, b) in prod.data().iter().zip(Matrix::eye(2).data()) {
            assert!((a - b).abs() < 1e-10);
        }
        // Singular matrix.
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(invert(&s).is_none());
    }

    #[test]
    fn partial_correlation_removes_mediator() {
        // Chain 0 -> 1 -> 2: corr(0,2) strong, pcorr(0,2 | 1) ≈ 0.
        let (_dag, x) = sem_data(&[(0, 1), (1, 2)], 3, 3000, 5);
        let corr = correlation_matrix(&x);
        assert!(corr.get(0, 2).abs() > 0.3);
        let pc02 = partial_correlation(&corr, 0, 2, &[1]);
        assert!(pc02.abs() < 0.08, "pcorr {pc02}");
    }

    #[test]
    fn pc_recovers_collider() {
        // 0 -> 2 <- 1: fully identifiable (the only graph in its MEC).
        let (_dag, x) = sem_data(&[(0, 2), (1, 2)], 3, 2000, 7);
        let res = pc(&x, &PcConfig::default());
        assert!(res.cpdag.directed.contains(&(0, 2)), "{:?}", res.cpdag);
        assert!(res.cpdag.directed.contains(&(1, 2)), "{:?}", res.cpdag);
        assert!(res.cpdag.undirected.is_empty());
    }

    #[test]
    fn pc_leaves_chain_unoriented() {
        // 0 -> 1 -> 2 is Markov equivalent to its reversals: skeleton only.
        let (_dag, x) = sem_data(&[(0, 1), (1, 2)], 3, 2000, 8);
        let res = pc(&x, &PcConfig::default());
        assert!(res.cpdag.directed.is_empty(), "{:?}", res.cpdag);
        assert_eq!(res.cpdag.undirected.len(), 2);
        // And 0, 2 were separated by {1}.
        assert_eq!(res.separating_sets.get(&(0, 2)), Some(&std::iter::once(1).collect()));
    }

    #[test]
    fn pc_matches_true_cpdag_on_random_dags() {
        let mut hits = 0;
        let total = 5;
        for seed in 0..total {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let dag = crate::graph_gen::random_dag(&mut rng, 6, 0.3);
            let w = random_weights(&mut rng, &dag, 1.0, 1.8);
            let x = sample_linear_sem(&mut rng, &w, &dag, 4000, 1.0);
            let res = pc(&x, &PcConfig::default());
            let truth = cpdag(&dag);
            // Compare skeletons; orientations may differ in edge cases.
            let learned_skel: BTreeSet<(usize, usize)> = res
                .cpdag
                .directed
                .iter()
                .map(|&(a, b)| (a.min(b), a.max(b)))
                .chain(res.cpdag.undirected.iter().copied())
                .collect();
            let true_skel: BTreeSet<(usize, usize)> = truth
                .directed
                .iter()
                .map(|&(a, b)| (a.min(b), a.max(b)))
                .chain(truth.undirected.iter().copied())
                .collect();
            let diff = learned_skel.symmetric_difference(&true_skel).count();
            assert!(diff <= 3, "seed {seed}: skeleton off by {diff} edges");
            if diff == 0 {
                hits += 1;
            }
        }
        assert!(hits >= 1, "skeleton never recovered exactly ({hits}/{total})");
    }

    #[test]
    fn cpdag_to_dag_is_acyclic_and_equivalent() {
        let (dag, x) = sem_data(&[(0, 1), (1, 2), (0, 3)], 4, 3000, 9);
        let res = pc(&x, &PcConfig::default());
        let ext = cpdag_to_dag(&res.cpdag);
        assert!(ext.is_dag());
        // The extension should usually be Markov equivalent to the truth.
        if crate::mec::skeleton(&ext) == crate::mec::skeleton(&dag) {
            assert!(markov_equivalent(&ext, &dag) || crate::mec::v_structures(&dag).is_empty());
        }
    }

    #[test]
    fn subsets_enumeration() {
        let s = subsets_of_size(&[1, 2, 3], 2);
        assert_eq!(s, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(subsets_of_size(&[1, 2], 0), vec![Vec::<usize>::new()]);
    }
}
