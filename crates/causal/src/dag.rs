//! Directed-graph representation with acyclicity utilities.

use causer_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A directed graph over `n` nodes stored as a dense boolean adjacency
/// matrix: `adj[i*n + j] == true` means edge `i -> j` ("i causes j").
///
/// ```
/// use causer_causal::DiGraph;
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert!(g.is_dag());
/// assert_eq!(g.topological_order().unwrap().len(), 3);
/// assert!(g.d_separated(0, 2, &[1])); // chain is blocked by its middle
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    n: usize,
    adj: Vec<bool>,
}

impl DiGraph {
    /// An empty graph over `n` nodes.
    pub fn empty(n: usize) -> Self {
        DiGraph { n, adj: vec![false; n * n] }
    }

    /// Build from an explicit edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = DiGraph::empty(n);
        for &(i, j) in edges {
            g.add_edge(i, j);
        }
        g
    }

    /// Binarize a weighted matrix: edge where `|w[i][j]| > threshold`.
    /// The diagonal is always ignored.
    pub fn from_weighted(w: &Matrix, threshold: f64) -> Self {
        assert_eq!(w.rows(), w.cols(), "adjacency must be square");
        let n = w.rows();
        let mut g = DiGraph::empty(n);
        for i in 0..n {
            for j in 0..n {
                if i != j && w.get(i, j).abs() > threshold {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i * self.n + j]
    }

    pub fn add_edge(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "edge endpoint out of range");
        assert_ne!(i, j, "self-loops are not allowed");
        self.adj[i * self.n + j] = true;
    }

    pub fn remove_edge(&mut self, i: usize, j: usize) {
        self.adj[i * self.n + j] = false;
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if self.has_edge(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    pub fn num_edges(&self) -> usize {
        self.adj.iter().filter(|&&b| b).count()
    }

    /// Nodes with an edge into `j`.
    pub fn parents(&self, j: usize) -> Vec<usize> {
        (0..self.n).filter(|&i| self.has_edge(i, j)).collect()
    }

    /// Nodes `j` with an edge from `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.has_edge(i, j)).collect()
    }

    /// Nodes adjacent to `i` in either direction.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| j != i && (self.has_edge(i, j) || self.has_edge(j, i))).collect()
    }

    /// Kahn's algorithm: `Some(order)` if acyclic, `None` otherwise.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for (_, j) in self.edges() {
            indeg[j] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for j in self.children(i) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Ancestors of `j` (excluding `j`), by reverse DFS.
    pub fn ancestors(&self, j: usize) -> Vec<usize> {
        let mut seen = vec![false; self.n];
        let mut stack = self.parents(j);
        while let Some(i) = stack.pop() {
            if !seen[i] {
                seen[i] = true;
                stack.extend(self.parents(i));
            }
        }
        (0..self.n).filter(|&i| seen[i]).collect()
    }

    /// Dense 0/1 adjacency matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| if self.has_edge(i, j) { 1.0 } else { 0.0 })
    }

    /// d-separation test: are `x` and `y` d-separated by the set `z`?
    ///
    /// Uses the standard reachability ("Bayes ball") formulation over the
    /// DAG; only valid when `self` is a DAG.
    pub fn d_separated(&self, x: usize, y: usize, z: &[usize]) -> bool {
        assert!(self.is_dag(), "d-separation requires a DAG");
        if x == y {
            return false;
        }
        let in_z = {
            let mut v = vec![false; self.n];
            for &i in z {
                v[i] = true;
            }
            v
        };
        // Nodes in Z or with a descendant in Z (for collider openings).
        let mut anc_of_z = in_z.clone();
        loop {
            let mut changed = false;
            for (i, j) in self.edges() {
                if anc_of_z[j] && !anc_of_z[i] {
                    anc_of_z[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // BFS over (node, direction) where direction is whether we arrived
        // via an edge pointing into the node (true) or out of it (false).
        let mut visited = vec![[false; 2]; self.n];
        let mut queue: Vec<(usize, bool)> = vec![(x, false)]; // start "leaving" x
        while let Some((node, arrived_via_incoming)) = queue.pop() {
            if node == y {
                return false;
            }
            let dir = usize::from(arrived_via_incoming);
            if visited[node][dir] {
                continue;
            }
            visited[node][dir] = true;
            if !arrived_via_incoming {
                // Trail continues from a non-collider position.
                if !in_z[node] {
                    for c in self.children(node) {
                        queue.push((c, true));
                    }
                    for p in self.parents(node) {
                        queue.push((p, false));
                    }
                }
            } else {
                // Arrived via edge into `node`.
                if !in_z[node] {
                    for c in self.children(node) {
                        queue.push((c, true));
                    }
                }
                if anc_of_z[node] {
                    // Collider opened by conditioning (node or descendant in Z).
                    for p in self.parents(node) {
                        queue.push((p, false));
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// chain 0 -> 1 -> 2, plus fork 1 -> 3.
    fn chain_fork() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)])
    }

    #[test]
    fn edges_and_degrees() {
        let g = chain_fork();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.parents(1), vec![0]);
        assert_eq!(g.children(1), vec![2, 3]);
        assert_eq!(g.neighbors(1), vec![0, 2, 3]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = chain_fork();
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = (0..4).map(|i| order.iter().position(|&x| x == i).unwrap()).collect();
        for (i, j) in g.edges() {
            assert!(pos[i] < pos[j], "{i} must precede {j}");
        }
    }

    #[test]
    fn cycle_detected() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!g.is_dag());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn ancestors_transitive() {
        let g = chain_fork();
        assert_eq!(g.ancestors(2), vec![0, 1]);
        assert_eq!(g.ancestors(0), Vec::<usize>::new());
    }

    #[test]
    fn from_weighted_thresholds() {
        let mut w = Matrix::zeros(3, 3);
        w.set(0, 1, 0.5);
        w.set(1, 2, -0.2);
        w.set(2, 2, 9.0); // diagonal ignored
        let g = DiGraph::from_weighted(&w, 0.3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn d_separation_chain() {
        // 0 -> 1 -> 2: 0 ⟂ 2 | 1, but not marginally.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!g.d_separated(0, 2, &[]));
        assert!(g.d_separated(0, 2, &[1]));
    }

    #[test]
    fn d_separation_fork() {
        // 1 <- 0 -> 2 (common cause): 1 ⟂ 2 | 0 only.
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 2)]);
        assert!(!g.d_separated(1, 2, &[]));
        assert!(g.d_separated(1, 2, &[0]));
    }

    #[test]
    fn d_separation_collider() {
        // 0 -> 2 <- 1 (v-structure): 0 ⟂ 1 marginally, dependent given 2.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        assert!(g.d_separated(0, 1, &[]));
        assert!(!g.d_separated(0, 1, &[2]));
    }

    #[test]
    fn d_separation_collider_descendant() {
        // 0 -> 2 <- 1, 2 -> 3: conditioning on descendant 3 opens the collider.
        let g = DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3)]);
        assert!(g.d_separated(0, 1, &[]));
        assert!(!g.d_separated(0, 1, &[3]));
    }
}
