//! Property tests for DAG utilities and Markov-equivalence machinery.

use causer_causal::{
    dag::DiGraph, graph_gen, markov_equivalent, mec, shd::shd, skeleton, v_structures,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_dag_from_seed(seed: u64, n: usize, p: f64) -> DiGraph {
    graph_gen::random_dag(&mut StdRng::seed_from_u64(seed), n, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graphs_are_dags(seed in 0u64..10_000, n in 2usize..15, p in 0.0f64..0.9) {
        let g = random_dag_from_seed(seed, n, p);
        prop_assert!(g.is_dag());
    }

    #[test]
    fn topological_order_is_a_permutation(seed in 0u64..10_000, n in 2usize..12) {
        let g = random_dag_from_seed(seed, n, 0.4);
        let order = g.topological_order().unwrap();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn acyclicity_agrees_with_kahn(seed in 0u64..10_000, n in 2usize..8, p in 0.0f64..0.8) {
        // Random *digraph* (not necessarily acyclic): flip each off-diagonal.
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut g = DiGraph::empty(n);
        let mut w = causer_tensor::Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j && rng.gen::<f64>() < p {
                    g.add_edge(i, j);
                    w.set(i, j, 1.0);
                }
            }
        }
        let h = causer_causal::acyclicity(&w);
        if g.is_dag() {
            prop_assert!(h.abs() < 1e-6, "DAG but h = {h}");
        } else {
            prop_assert!(h > 1e-6, "cyclic but h = {h}");
        }
    }

    #[test]
    fn markov_equivalence_is_reflexive(seed in 0u64..10_000, n in 2usize..10) {
        let g = random_dag_from_seed(seed, n, 0.4);
        prop_assert!(markov_equivalent(&g, &g));
    }

    #[test]
    fn equivalent_graphs_have_equal_shd_zero_only_if_identical(
        seed in 0u64..10_000, n in 3usize..10,
    ) {
        let g = random_dag_from_seed(seed, n, 0.4);
        prop_assert_eq!(shd(&g, &g), 0);
    }

    #[test]
    fn reversing_one_nonvstructure_edge_preserves_skeleton(seed in 0u64..10_000, n in 3usize..10) {
        let g = random_dag_from_seed(seed, n, 0.4);
        let edges = g.edges();
        prop_assume!(!edges.is_empty());
        let (i, j) = edges[seed as usize % edges.len()];
        let mut rev = g.clone();
        rev.remove_edge(i, j);
        rev.add_edge(j, i);
        prop_assert_eq!(skeleton(&g), skeleton(&rev));
        // And SHD counts exactly the one reversal.
        prop_assert_eq!(shd(&g, &rev), 1);
    }

    #[test]
    fn covered_edge_reversal_preserves_markov_equivalence(seed in 0u64..10_000, n in 3usize..9) {
        // Chickering: reversing a covered edge (parents(j) = parents(i) ∪ {i})
        // keeps the DAG in the same MEC — the classic characterization.
        let g = random_dag_from_seed(seed, n, 0.45);
        for (i, j) in g.edges() {
            let mut pi = g.parents(i);
            pi.push(i);
            pi.sort_unstable();
            let pj = g.parents(j);
            if pi == pj {
                let mut rev = g.clone();
                rev.remove_edge(i, j);
                rev.add_edge(j, i);
                if rev.is_dag() {
                    prop_assert!(
                        markov_equivalent(&g, &rev),
                        "covered edge ({i},{j}) reversal left the MEC"
                    );
                }
            }
        }
    }

    #[test]
    fn cpdag_partitions_skeleton(seed in 0u64..10_000, n in 3usize..10) {
        let g = random_dag_from_seed(seed, n, 0.4);
        let c = mec::cpdag(&g);
        let skel = skeleton(&g);
        let mut covered = std::collections::BTreeSet::new();
        for &(a, b) in &c.directed {
            covered.insert((a.min(b), a.max(b)));
        }
        for &e in &c.undirected {
            covered.insert(e);
        }
        prop_assert_eq!(covered, skel);
    }

    #[test]
    fn v_structures_parents_nonadjacent(seed in 0u64..10_000, n in 3usize..10) {
        let g = random_dag_from_seed(seed, n, 0.5);
        let skel = skeleton(&g);
        for (i, k, j) in v_structures(&g) {
            prop_assert!(g.has_edge(i, k) && g.has_edge(j, k));
            prop_assert!(!skel.contains(&(i.min(j), i.max(j))));
        }
    }
}
