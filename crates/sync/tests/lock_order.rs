//! causer-sync behavior tests.
//!
//! The first half runs under any feature set and pins the std-compatible
//! surface (guards, condvars, poisoning). The second half is gated on
//! `lock-order` and pins the sanitizer itself — `scripts/check.sh` runs
//! this suite with `--features lock-order`, so the gated half is exercised
//! on every CI pass:
//!
//! ```bash
//! cargo test -p causer-sync --features lock-order
//! ```

use causer_sync::{Condvar, Mutex, RwLock};
use std::sync::Arc;
use std::time::Duration;

/// The wrappers behave like their std counterparts for plain data access.
#[test]
fn mutex_and_rwlock_round_trip() {
    let m = Mutex::ranked("test.m", 10, vec![1u64, 2]);
    m.lock().expect("poisoned").push(3);
    assert_eq!(*m.lock().expect("poisoned"), vec![1, 2, 3]);

    let rw = RwLock::ranked("test.rw", 20, 7u64);
    assert_eq!(*rw.read().expect("poisoned"), 7);
    *rw.write().expect("poisoned") = 8;
    assert_eq!(*rw.read().expect("poisoned"), 8);
}

/// Condvar wait/wait_timeout thread the guard through like std's.
#[test]
fn condvar_wait_delivers_value() {
    let shared = Arc::new((Mutex::ranked("test.cv", 10, 0u64), Condvar::new()));
    let waiter = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let (lock, cond) = &*shared;
            let mut val = lock.lock().expect("poisoned");
            while *val == 0 {
                val = cond.wait(val).expect("poisoned");
            }
            *val
        })
    };
    // Nudge the waiter until it observes the store (spurious-wakeup safe).
    loop {
        {
            let mut val = shared.0.lock().expect("poisoned");
            *val = 42;
        }
        shared.1.notify_all();
        if waiter.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(waiter.join().expect("waiter panicked"), 42);

    let (lock, cond) = &*shared;
    let guard = lock.lock().expect("poisoned");
    let (guard, timed_out) = cond.wait_timeout(guard, Duration::from_millis(1)).expect("poisoned");
    assert!(timed_out.timed_out());
    assert_eq!(*guard, 42);
}

/// A panic while holding the lock poisons it, and the poisoned guard still
/// reaches the data — the std contract the serve tier's `.expect()` calls
/// rely on.
#[test]
fn poisoning_is_preserved() {
    let m = Arc::new(Mutex::ranked("test.poison", 10, 1u64));
    let m2 = Arc::clone(&m);
    let _ = std::thread::spawn(move || {
        let _guard = m2.lock().expect("first lock");
        panic!("poison it");
    })
    .join();
    let err = m.lock().expect_err("mutex should be poisoned");
    assert_eq!(*err.into_inner(), 1);
}

#[cfg(feature = "lock-order")]
mod sanitizer {
    use super::*;
    use causer_sync::held_locks;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Panic message of `f`, which must panic.
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = catch_unwind(f).expect_err("expected a lock-order panic");
        match err.downcast::<String>() {
            Ok(s) => *s,
            Err(err) => err.downcast::<&str>().expect("panic payload is a string").to_string(),
        }
    }

    /// Ascending ranks nest freely and the stack drains to empty.
    #[test]
    fn ascending_ranks_are_legal() {
        let low = Mutex::ranked("test.low", 10, ());
        let mid = RwLock::ranked("test.mid", 20, ());
        let high = Mutex::ranked("test.high", 30, ());
        {
            let _a = low.lock().expect("poisoned");
            let _b = mid.read().expect("poisoned");
            let _c = high.lock().expect("poisoned");
            assert_eq!(held_locks(), 3);
        }
        assert_eq!(held_locks(), 0);
    }

    /// The planted serve-tier inversion: two shard locks on the same rank
    /// taken together (the double-shard hazard). The panic names both
    /// acquisition sites, file and line.
    #[test]
    fn same_rank_nesting_panics_naming_both_sites() {
        let shard_a = Mutex::ranked("serve.frontend.shard_state", 10, ());
        let shard_b = Mutex::ranked("serve.frontend.shard_state", 10, ());
        let first = shard_a.lock().expect("poisoned");
        let msg = panic_message(AssertUnwindSafe(|| {
            let _second = shard_b.lock();
        }));
        drop(first);
        assert!(msg.contains("lock-order violation"), "unexpected message: {msg}");
        assert!(
            msg.contains("acquiring `serve.frontend.shard_state` (rank 10)"),
            "missing acquiring site: {msg}"
        );
        assert!(
            msg.contains("while holding `serve.frontend.shard_state` (rank 10)"),
            "missing held site: {msg}"
        );
        // Both acquisition sites are in this file, at two distinct lines.
        assert_eq!(msg.matches("lock_order.rs").count(), 2, "expected two sites: {msg}");
        assert_eq!(held_locks(), 0, "failed acquisition must not leak a record");
    }

    /// A descending-rank acquisition (B→A after the legal A→B) panics.
    #[test]
    fn rank_inversion_panics() {
        let a = Mutex::ranked("test.a", 10, ());
        let b = Mutex::ranked("test.b", 20, ());
        {
            // Legal direction.
            let _ga = a.lock().expect("poisoned");
            let _gb = b.lock().expect("poisoned");
        }
        let gb = b.lock().expect("poisoned");
        let msg = panic_message(AssertUnwindSafe(|| {
            let _ga = a.lock();
        }));
        drop(gb);
        assert!(msg.contains("acquiring `test.a` (rank 10)"), "unexpected message: {msg}");
        assert!(msg.contains("while holding `test.b` (rank 20)"), "unexpected message: {msg}");
    }

    /// The rank check is against *every* held lock, not just the last one
    /// — releasing out of LIFO order must not open a hole.
    #[test]
    fn check_spans_all_held_locks() {
        let a = Mutex::ranked("test.a", 10, ());
        let c = Mutex::ranked("test.c", 30, ());
        let mid = Mutex::ranked("test.mid", 20, ());
        let ga = a.lock().expect("poisoned");
        let gc = c.lock().expect("poisoned");
        drop(ga); // out-of-order release; rank 30 stays held
        let msg = panic_message(AssertUnwindSafe(|| {
            let _gm = mid.lock();
        }));
        drop(gc);
        assert!(msg.contains("while holding `test.c` (rank 30)"), "unexpected message: {msg}");
    }

    /// Recursive read of one rwlock is rejected (a queued writer between
    /// the two reads deadlocks both).
    #[test]
    fn recursive_read_panics() {
        let rw = RwLock::ranked("test.rw", 20, ());
        let first = rw.read().expect("poisoned");
        let msg = panic_message(AssertUnwindSafe(|| {
            let _second = rw.read();
        }));
        drop(first);
        assert!(msg.contains("rank 20"), "unexpected message: {msg}");
    }

    /// A condvar wait keeps the mutex's rank held across the park, and the
    /// guard that comes back still holds it.
    #[test]
    fn wait_keeps_rank_held() {
        let m = Mutex::ranked("test.cv", 10, ());
        let cond = Condvar::new();
        let guard = m.lock().expect("poisoned");
        assert_eq!(held_locks(), 1);
        let (guard, _timed_out) =
            cond.wait_timeout(guard, Duration::from_millis(1)).expect("poisoned");
        assert_eq!(held_locks(), 1);
        drop(guard);
        assert_eq!(held_locks(), 0);
    }

    /// Ranks are per-thread: two threads each holding one lock never trip
    /// the checker.
    #[test]
    fn stacks_are_thread_local() {
        let a = Arc::new(Mutex::ranked("test.a", 10, ()));
        let b = Arc::new(Mutex::ranked("test.b", 20, ()));
        let gb = b.lock().expect("poisoned");
        let a2 = Arc::clone(&a);
        // Rank 10 < 20, but on a fresh thread nothing is held.
        std::thread::spawn(move || {
            let _ga = a2.lock().expect("poisoned");
        })
        .join()
        .expect("acquisition on a fresh thread must not panic");
        drop(gb);
    }
}
