//! `causer-sync` — rank-annotated lock wrappers with an optional runtime
//! lock-order sanitizer.
//!
//! The serve tier assigns every lock a **rank** (see DESIGN.md §8): a
//! thread may only acquire a lock whose rank is *strictly greater* than
//! every lock it already holds. Ranks define a global acquisition order,
//! which makes lock-order deadlocks impossible by construction. The static
//! side of that contract is checked by `causer-lint`'s lock-order pass;
//! this crate is the dynamic side.
//!
//! [`Mutex`], [`RwLock`] and [`Condvar`] wrap their `std::sync`
//! counterparts with the same `lock()`/`read()`/`write()`/`wait()` API
//! (including [`LockResult`] poisoning semantics), plus a
//! [`Mutex::ranked`]-style constructor that attaches a name and rank:
//!
//! ```
//! use causer_sync::Mutex;
//!
//! let m = Mutex::ranked("example.counter", 10, 0u64);
//! *m.lock().expect("poisoned") += 1;
//! assert_eq!(*m.lock().expect("poisoned"), 1);
//! ```
//!
//! With the `lock-order` cargo feature **off** (the default) the name and
//! rank are dropped at construction and every call inlines to the bare
//! `std::sync` operation — zero cost, zero behavior change.
//!
//! With `lock-order` **on**, each thread keeps a stack of the ranked locks
//! it currently holds, recorded with the acquisition site via
//! [`std::panic::Location`]. Acquiring a lock whose rank is less than or
//! equal to any held rank panics immediately — *before* blocking on the
//! underlying lock — naming both the offending acquisition site and the
//! site that acquired the held lock. Equal ranks are deliberately rejected:
//! two locks on the same rank must never nest (that covers the classic
//! double-shard hazard where two instances of the *same* lock array are
//! taken together). Re-reading an [`RwLock`] a thread already holds is
//! rejected for the same reason — a writer arriving between the two read
//! acquisitions can deadlock them.
//!
//! [`Condvar::wait`] keeps the waited mutex's rank on the stack for the
//! whole wait: the OS releases the mutex while parked, but the thread
//! re-acquires it before returning, so for ordering purposes the rank is
//! held throughout.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, WaitTimeoutResult};
use std::time::Duration;

#[cfg(feature = "lock-order")]
mod order {
    //! The per-thread acquisition stack behind the `lock-order` feature.

    use std::cell::{Cell, RefCell};
    use std::panic::Location;

    /// Name + rank attached to a lock at construction.
    pub(crate) struct LockMeta {
        name: &'static str,
        rank: u32,
    }

    impl LockMeta {
        pub(crate) const fn new(name: &'static str, rank: u32) -> Self {
            LockMeta { name, rank }
        }
    }

    /// One held lock on the current thread's stack.
    struct Held {
        id: u64,
        name: &'static str,
        rank: u32,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    }

    /// Proof of a recorded acquisition; dropping it removes the record.
    /// Guards may be released in any order, so removal is by id, not pop.
    pub(crate) struct HeldToken {
        id: u64,
    }

    /// Record an acquisition, panicking on a rank inversion. Runs *before*
    /// the underlying lock call so an inversion reports instead of
    /// deadlocking. `#[track_caller]` chains through the wrapper methods,
    /// so the reported site is the caller's `.lock()`/`.read()`/`.write()`
    /// expression.
    #[track_caller]
    pub(crate) fn acquire(meta: &LockMeta) -> HeldToken {
        let site = Location::caller();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(prev) = held.iter().rev().find(|h| h.rank >= meta.rank) {
                panic!(
                    "lock-order violation: acquiring `{}` (rank {}) at {site} \
                     while holding `{}` (rank {}) acquired at {}",
                    meta.name, meta.rank, prev.name, prev.rank, prev.site
                );
            }
            let id = NEXT_ID.with(|n| {
                let id = n.get();
                n.set(id + 1);
                id
            });
            held.push(Held { id, name: meta.name, rank: meta.rank, site });
            HeldToken { id }
        })
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            // try_with: thread-local storage may already be torn down when
            // a guard held in another TLS destructor drops at thread exit.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(i) = held.iter().position(|h| h.id == self.id) {
                    held.remove(i);
                }
            });
        }
    }

    /// Ranked locks the current thread holds right now.
    pub(crate) fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(not(feature = "lock-order"))]
mod order {
    //! Zero-sized stand-ins compiled when `lock-order` is off: every
    //! bookkeeping call inlines to nothing.

    pub(crate) struct LockMeta;

    impl LockMeta {
        #[inline(always)]
        pub(crate) const fn new(_name: &'static str, _rank: u32) -> Self {
            LockMeta
        }
    }

    pub(crate) struct HeldToken;

    #[inline(always)]
    pub(crate) fn acquire(_meta: &LockMeta) -> HeldToken {
        HeldToken
    }
}

/// Ranked locks the current thread holds right now — a test hook for
/// asserting that critical sections release everything they take.
#[cfg(feature = "lock-order")]
pub fn held_locks() -> usize {
    order::held_count()
}

/// A rank-annotated [`std::sync::Mutex`].
pub struct Mutex<T> {
    meta: order::LockMeta,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex named `name` at lock rank `rank`. With the `lock-order`
    /// feature off, the name and rank compile away.
    pub const fn ranked(name: &'static str, rank: u32, value: T) -> Self {
        Mutex { meta: order::LockMeta::new(name, rank), inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the mutex, blocking the current thread. Same poisoning
    /// contract as [`std::sync::Mutex::lock`]; with `lock-order` on, a
    /// rank inversion panics before blocking.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let _token = order::acquire(&self.meta);
        match self.inner.lock() {
            Ok(inner) => Ok(MutexGuard { inner, _token }),
            Err(poisoned) => {
                Err(PoisonError::new(MutexGuard { inner: poisoned.into_inner(), _token }))
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard of a locked [`Mutex`]; releases the lock (and its rank
/// record) on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    _token: order::HeldToken,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A rank-annotated [`std::sync::RwLock`].
pub struct RwLock<T> {
    meta: order::LockMeta,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// An rwlock named `name` at lock rank `rank`. With the `lock-order`
    /// feature off, the name and rank compile away.
    pub const fn ranked(name: &'static str, rank: u32, value: T) -> Self {
        RwLock { meta: order::LockMeta::new(name, rank), inner: std::sync::RwLock::new(value) }
    }

    /// Acquire shared read access. Same contract as
    /// [`std::sync::RwLock::read`]; with `lock-order` on, the read holds
    /// the lock's rank (recursive reads are rejected — see the crate docs).
    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let _token = order::acquire(&self.meta);
        match self.inner.read() {
            Ok(inner) => Ok(RwLockReadGuard { inner, _token }),
            Err(poisoned) => {
                Err(PoisonError::new(RwLockReadGuard { inner: poisoned.into_inner(), _token }))
            }
        }
    }

    /// Acquire exclusive write access. Same contract as
    /// [`std::sync::RwLock::write`].
    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let _token = order::acquire(&self.meta);
        match self.inner.write() {
            Ok(inner) => Ok(RwLockWriteGuard { inner, _token }),
            Err(poisoned) => {
                Err(PoisonError::new(RwLockWriteGuard { inner: poisoned.into_inner(), _token }))
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard of a read-locked [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _token: order::HeldToken,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard of a write-locked [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _token: order::HeldToken,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable for [`Mutex`] guards — a thin wrapper over
/// [`std::sync::Condvar`] that threads the guard's rank record through the
/// wait (the rank stays held; see the crate docs).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing and re-acquiring `guard`'s mutex.
    /// Same contract as [`std::sync::Condvar::wait`].
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let MutexGuard { inner, _token } = guard;
        match self.inner.wait(inner) {
            Ok(inner) => Ok(MutexGuard { inner, _token }),
            Err(poisoned) => {
                Err(PoisonError::new(MutexGuard { inner: poisoned.into_inner(), _token }))
            }
        }
    }

    /// Block until notified or `dur` elapses. Same contract as
    /// [`std::sync::Condvar::wait_timeout`].
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let MutexGuard { inner, _token } = guard;
        match self.inner.wait_timeout(inner, dur) {
            Ok((inner, timed_out)) => Ok((MutexGuard { inner, _token }, timed_out)),
            Err(poisoned) => {
                let (inner, timed_out) = poisoned.into_inner();
                Err(PoisonError::new((MutexGuard { inner, _token }, timed_out)))
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
