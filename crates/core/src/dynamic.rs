//! Dynamic causal graphs — the first future-work direction of §VI: "an
//! interesting direction is to introduce dynamic causal graph into our
//! model, where the causal relation can be altered when the interaction
//! times are different."
//!
//! This module fits a *separate* cluster-level transition graph per
//! sequence phase (early / middle / late thirds of each user's history, or
//! any number of buckets) with closed-form ridge regression of each step's
//! cluster-indicator vector on its recency-discounted history context, and
//! quantifies how much the causal structure drifts over time (edge churn).

use causer_causal::pc::invert;
use causer_causal::DiGraph;
use causer_data::LeaveLastOut;
use causer_tensor::Matrix;

/// Configuration of the dynamic-graph fit.
#[derive(Clone, Debug)]
pub struct DynamicGraphConfig {
    /// Number of sequence-phase buckets.
    pub buckets: usize,
    /// Recency discount of the history context.
    pub gamma: f64,
    /// Ridge regularization strength.
    pub ridge: f64,
    /// Threshold for binarizing the fitted transition weights.
    pub threshold: f64,
}

impl Default for DynamicGraphConfig {
    fn default() -> Self {
        DynamicGraphConfig { buckets: 3, gamma: 0.7, ridge: 1.0, threshold: 0.08 }
    }
}

/// Result: one fitted weighted graph per bucket plus drift statistics.
#[derive(Clone, Debug)]
pub struct DynamicGraphs {
    /// Fitted `K × K` transition weights per bucket (diagonal zeroed).
    pub weights: Vec<Matrix>,
    /// Binarized graphs at the configured threshold.
    pub graphs: Vec<DiGraph>,
    /// Number of regression rows per bucket.
    pub rows: Vec<usize>,
}

impl DynamicGraphs {
    /// Jaccard distance between consecutive buckets' edge sets — 0 means a
    /// static causal structure, 1 a complete change.
    pub fn edge_churn(&self) -> Vec<f64> {
        self.graphs
            .windows(2)
            .map(|w| {
                let a: std::collections::BTreeSet<_> = w[0].edges().into_iter().collect();
                let b: std::collections::BTreeSet<_> = w[1].edges().into_iter().collect();
                let union = a.union(&b).count();
                if union == 0 {
                    0.0
                } else {
                    1.0 - a.intersection(&b).count() as f64 / union as f64
                }
            })
            .collect()
    }
}

/// Fit per-bucket transition graphs from the training split.
///
/// `assignments` is the `|V| × K` (soft or hard) cluster-assignment matrix;
/// use the ground-truth one-hot matrix for analysis of simulated data or a
/// trained model's [`crate::ClusterModule::assignments_plain`].
pub fn fit_dynamic_graphs(
    split: &LeaveLastOut,
    assignments: &Matrix,
    config: &DynamicGraphConfig,
) -> DynamicGraphs {
    let k = assignments.cols();
    assert!(config.buckets >= 1, "need at least one bucket");
    // Per bucket: accumulate XᵀX (with intercept column) and XᵀY.
    let dim = k + 1; // context + intercept
    let mut xtx = vec![Matrix::zeros(dim, dim); config.buckets];
    let mut xty = vec![Matrix::zeros(dim, k); config.buckets];
    let mut rows = vec![0usize; config.buckets];

    for hist in &split.train {
        let steps = &hist.steps;
        if steps.len() < 2 {
            continue;
        }
        let mut ctx = vec![0.0f64; k];
        // Initialize context with the first step.
        accumulate_step(&mut ctx, assignments, &steps[0], 1.0);
        for t in 1..steps.len() {
            let bucket =
                ((t - 1) * config.buckets / (steps.len() - 1).max(1)).min(config.buckets - 1);
            let mut target = vec![0.0f64; k];
            accumulate_step(&mut target, assignments, &steps[t], 1.0);
            // Design row: [ctx, 1].
            let mut x = ctx.clone();
            x.push(1.0);
            let (xx, xy) = (&mut xtx[bucket], &mut xty[bucket]);
            for a in 0..dim {
                for b in 0..dim {
                    xx.set(a, b, xx.get(a, b) + x[a] * x[b]);
                }
                for (c, &t) in target.iter().enumerate() {
                    xy.set(a, c, xy.get(a, c) + x[a] * t);
                }
            }
            rows[bucket] += 1;
            for v in ctx.iter_mut() {
                *v *= config.gamma;
            }
            accumulate_step(&mut ctx, assignments, &steps[t], 1.0);
        }
    }

    let mut weights = Vec::with_capacity(config.buckets);
    let mut graphs = Vec::with_capacity(config.buckets);
    for b in 0..config.buckets {
        let mut reg = xtx[b].clone();
        for i in 0..dim {
            reg.set(i, i, reg.get(i, i) + config.ridge);
        }
        let w_full = match invert(&reg) {
            Some(inv) => inv.matmul(&xty[b]), // (K+1) × K, last row = intercept
            None => Matrix::zeros(dim, k),
        };
        // Drop the intercept row and the diagonal.
        let mut w = Matrix::from_fn(k, k, |i, j| if i == j { 0.0 } else { w_full.get(i, j) });
        for v in w.data_mut() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        graphs.push(DiGraph::from_weighted(&w, config.threshold));
        weights.push(w);
    }
    DynamicGraphs { weights, graphs, rows }
}

fn accumulate_step(ctx: &mut [f64], assignments: &Matrix, step: &[usize], scale: f64) {
    for &item in step {
        for (o, &a) in ctx.iter_mut().zip(assignments.row(item)) {
            *o += a * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    fn one_hot_assignments(clusters: &[usize], k: usize) -> Matrix {
        Matrix::from_fn(clusters.len(), k, |i, j| if clusters[i] == j { 1.0 } else { 0.0 })
    }

    #[test]
    fn static_generator_yields_low_churn() {
        // The simulator's graph is static, so buckets should agree broadly.
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.2);
        let sim = simulate(&profile, 3);
        let split = sim.interactions.leave_last_out();
        let assign = one_hot_assignments(&sim.item_clusters, profile.true_clusters);
        let fit = fit_dynamic_graphs(&split, &assign, &DynamicGraphConfig::default());
        assert_eq!(fit.weights.len(), 3);
        assert!(fit.rows.iter().all(|&r| r > 0));
        let churn = fit.edge_churn();
        assert_eq!(churn.len(), 2);
        // Not a strict zero (sampling noise), but clearly below full churn.
        assert!(churn.iter().all(|&c| c < 0.9), "churn {churn:?}");
    }

    #[test]
    fn fitted_weights_prefer_true_edges() {
        let profile = DatasetProfile::paper(DatasetKind::Baby).scaled(0.2);
        let sim = simulate(&profile, 7);
        let split = sim.interactions.leave_last_out();
        let k = profile.true_clusters;
        let assign = one_hot_assignments(&sim.item_clusters, k);
        let fit = fit_dynamic_graphs(
            &split,
            &assign,
            &DynamicGraphConfig { buckets: 1, ..Default::default() },
        );
        let w = &fit.weights[0];
        let mut edge_sum = 0.0;
        let mut edge_n = 0;
        let mut non_sum = 0.0;
        let mut non_n = 0;
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                if sim.cluster_graph.has_edge(i, j) {
                    edge_sum += w.get(i, j);
                    edge_n += 1;
                } else {
                    non_sum += w.get(i, j);
                    non_n += 1;
                }
            }
        }
        let edge_mean = edge_sum / edge_n.max(1) as f64;
        let non_mean = non_sum / non_n.max(1) as f64;
        assert!(edge_mean > non_mean + 0.02, "true-edge mean {edge_mean} vs non-edge {non_mean}");
    }

    #[test]
    fn single_bucket_equals_static_fit() {
        let profile = DatasetProfile::paper(DatasetKind::Epinions).scaled(0.2);
        let sim = simulate(&profile, 5);
        let split = sim.interactions.leave_last_out();
        let assign = one_hot_assignments(&sim.item_clusters, profile.true_clusters);
        let fit = fit_dynamic_graphs(
            &split,
            &assign,
            &DynamicGraphConfig { buckets: 1, ..Default::default() },
        );
        assert_eq!(fit.weights.len(), 1);
        assert!(fit.edge_churn().is_empty());
    }
}
