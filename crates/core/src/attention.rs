//! The bilinear local attention of eq. (10):
//! `α_t = softmax_t( h_t^T A h_{j−1} )`,
//! applied to the causally filtered history to discriminate the importance
//! of items that are already causes of the target.

use causer_tensor::{init, simd, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::Rng;

/// Learned bilinear attention with projection `A ∈ R^{d_h × d_h}`.
#[derive(Clone, Debug)]
pub struct BilinearAttention {
    pub a: ParamId,
    pub hidden_dim: usize,
}

impl BilinearAttention {
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        prefix: &str,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        let a = ps.add(&format!("{prefix}.A"), init::xavier(rng, hidden_dim, hidden_dim));
        BilinearAttention { a, hidden_dim }
    }

    /// Autodiff weights: `hs` is the stacked history `T × d_h`, `query` the
    /// summary state `1 × d_h`. Returns `T × 1` attention weights.
    pub fn weights(&self, g: &mut Graph, ps: &ParamSet, hs: NodeId, query: NodeId) -> NodeId {
        let a = g.param(ps, self.a);
        let qt = g.transpose(query); // d_h × 1
        let aq = g.matmul(a, qt); // d_h × 1
        let scores = g.matmul(hs, aq); // T × 1
        let st = g.transpose(scores); // 1 × T
        let sm = g.softmax_rows(st);
        g.transpose(sm) // T × 1
    }

    /// Plain-matrix attention weights for inference.
    pub fn weights_plain(&self, ps: &ParamSet, hs: &Matrix, query: &Matrix) -> Vec<f64> {
        let aq = ps.value(self.a).matmul(&query.transpose()); // d_h × 1
        let scores = hs.matmul(&aq); // T × 1
        let mut out = Vec::new();
        softmax_into(scores.data(), &mut out);
        out
    }

    /// Allocation-free twin of [`BilinearAttention::weights_plain`]: writes
    /// the weights into `out` (reusing its capacity) and keeps every
    /// intermediate in `scratch`. The arithmetic — `A·qᵀ` through the same
    /// dispatched matmul kernels, then the same stable softmax pass — is
    /// identical, so the results are bitwise-equal to the allocating twin
    /// (asserted in tests). This is the warm serving path's re-weight.
    pub fn weights_plain_into(
        &self,
        ps: &ParamSet,
        hs: &Matrix,
        query: &Matrix,
        out: &mut Vec<f64>,
        scratch: &mut AttnScratch,
    ) {
        // `query` is 1×d_h; its transpose is the same contiguous buffer
        // reshaped d_h×1, so a row copy into the scratch column suffices.
        scratch.qt.assign_from(query.cols(), 1, query.row(0));
        ps.value(self.a).matmul_into(&scratch.qt, &mut scratch.aq); // d_h × 1
        hs.matmul_into(&scratch.aq, &mut scratch.scores); // T × 1
        softmax_into(scratch.scores.data(), out);
    }
}

/// Reusable scratch for [`BilinearAttention::weights_plain_into`] — one per
/// scoring worker, never per user or per stream.
#[derive(Default)]
pub struct AttnScratch {
    /// The query column `qᵀ` (`d_h × 1`).
    qt: Matrix,
    /// `A · qᵀ` (`d_h × 1`).
    aq: Matrix,
    /// Raw attention scores (`T × 1`).
    scores: Matrix,
}

/// Stable softmax over a slice.
pub fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Stable softmax into a reused output buffer, through the dispatched
/// [`simd::softmax_rows`] kernel as one `1×T` row — the same kernel the
/// training graph's `softmax_rows` op runs, so the attention weights of
/// the plain forward and the autodiff forward agree per tier. On the
/// scalar/sse2 tiers the kernel's max / exp / sum / divide passes are
/// bitwise-equal to [`softmax`]; the `avx2` tier vectorizes `exp` and
/// reassociates the denominator within the usual ≤1e-12 tier tolerance.
/// [`BilinearAttention::weights_plain`] and
/// [`BilinearAttention::weights_plain_into`] both route here, so the
/// batch re-encode and the incremental warm path can never disagree.
pub fn softmax_into(scores: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(scores.len(), 0.0);
    simd::softmax_rows(scores, 1, scores.len(), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn graph_and_plain_agree() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let att = BilinearAttention::new(&mut ps, "att", 4, &mut rng);
        let hs = init::uniform(&mut rng, 3, 4, 1.0);
        let q = init::uniform(&mut rng, 1, 4, 1.0);
        let mut g = Graph::new();
        let hsn = g.constant(hs.clone());
        let qn = g.constant(q.clone());
        let w = att.weights(&mut g, &ps, hsn, qn);
        let plain = att.weights_plain(&ps, &hs, &q);
        assert_eq!(g.shape(w), (3, 1));
        for (a, b) in g.value(w).data().iter().zip(plain.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_form_distribution() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ps = ParamSet::new();
        let att = BilinearAttention::new(&mut ps, "att", 3, &mut rng);
        let hs = init::uniform(&mut rng, 5, 3, 2.0);
        let q = init::uniform(&mut rng, 1, 3, 2.0);
        let w = att.weights_plain(&ps, &hs, &q);
        assert_eq!(w.len(), 5);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gradient_flows_through_attention() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamSet::new();
        let att = BilinearAttention::new(&mut ps, "att", 3, &mut rng);
        let hsm = init::uniform(&mut rng, 4, 3, 1.0);
        let qm = init::uniform(&mut rng, 1, 3, 1.0);
        gradcheck::check_gradients(&mut ps, 1e-4, |g, ps| {
            let hs = g.constant(hsm.clone());
            let q = g.constant(qm.clone());
            let w = att.weights(g, ps, hs, q);
            // Weighted sum of hidden states, then a quadratic loss.
            let wt = g.transpose(w);
            let pooled = g.matmul(wt, hs);
            let sq = g.mul(pooled, pooled);
            g.sum_all(sq)
        });
    }

    #[test]
    fn weights_plain_into_is_bitwise_equal_and_reuses_buffers() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ps = ParamSet::new();
        let att = BilinearAttention::new(&mut ps, "att", 6, &mut rng);
        let mut scratch = AttnScratch::default();
        let mut out = Vec::new();
        for t in 1..9usize {
            let hs = init::uniform(&mut rng, t, 6, 1.5);
            let q = init::uniform(&mut rng, 1, 6, 1.5);
            let expect = att.weights_plain(&ps, &hs, &q);
            att.weights_plain_into(&ps, &hs, &q, &mut out, &mut scratch);
            assert_eq!(expect.len(), out.len());
            for (a, b) in expect.iter().zip(out.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "softmax weights must be bitwise equal");
            }
        }
    }

    #[test]
    fn softmax_of_uniform_scores_is_uniform() {
        let w = softmax(&[0.3, 0.3, 0.3]);
        for v in w {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}
