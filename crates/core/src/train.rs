//! Algorithm 1: joint training of the recommender and the cluster-level
//! causal graph with the augmented Lagrangian acyclicity constraint.
//!
//! When observability is enabled (`CAUSER_OBS=1` / `causer_obs::set_enabled`)
//! the loop emits one `train.epoch` event per epoch — total/BCE/regularizer/
//! structure losses, h(W^c), the augmented-Lagrangian α and ρ, the last
//! batch's pre-clip gradient norm, and the epoch wall-time — plus the
//! aggregate metrics listed in `causer_obs::names`. Disabled, the
//! instrumentation is a handful of relaxed atomic loads per epoch.

use crate::model::CauserModel;
use causer_data::{LeaveLastOut, NegativeSampler, Step, UserHistory};
use causer_obs::names as obs;
use causer_tensor::{Adam, Optimizer, ParallelTrainer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Optimization hyper-parameters (Algorithm 1 inputs).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f64,
    /// Negative samples per positive item.
    pub neg_samples: usize,
    /// Initial Lagrange multiplier β₁.
    pub beta1: f64,
    /// Initial penalty β₂.
    pub beta2: f64,
    /// Penalty growth κ₁ > 1 (line 15).
    pub kappa1: f64,
    /// Required shrink factor κ₂ < 1 (line 15).
    pub kappa2: f64,
    /// Weight of the clustering/reconstruction losses per batch.
    pub aux_weight: f64,
    /// Weight of the NOTEARS-style structure-fitting term on behaviour
    /// sequences (ties `W^c` to transition directions).
    pub struct_weight: f64,
    /// Global gradient-norm clip.
    pub clip: f64,
    /// Adam weight decay (L2).
    pub weight_decay: f64,
    /// Cap on target steps per user per epoch (bounds Foursquare-length
    /// sequences; the most recent steps are kept).
    pub max_targets_per_user: usize,
    /// §III-C efficiency mode: update `Θ_a` and `W^c` only every `n`-th
    /// epoch. `None` updates them every epoch.
    pub slow_update_every: Option<usize>,
    pub seed: u64,
    /// Print a one-line progress report per epoch.
    pub verbose: bool,
    /// Worker threads for data-parallel batch sharding. `None` defers to the
    /// `CAUSER_THREADS` environment variable (default 1 = serial). With one
    /// thread, training is byte-for-byte the serial loop; with `N` threads,
    /// per-shard gradients are reduced in shard order, so results differ
    /// from serial only in floating-point summation order and are
    /// reproducible for a fixed `N`.
    pub threads: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 5e-3,
            neg_samples: 4,
            beta1: 0.1,
            beta2: 1.0,
            kappa1: 3.0,
            kappa2: 0.75,
            aux_weight: 1.0,
            struct_weight: 3.0,
            clip: 5.0,
            weight_decay: 1e-4,
            max_targets_per_user: 8,
            slow_update_every: None,
            seed: 17,
            verbose: false,
            threads: None,
        }
    }
}

/// One user's precomputed work for a batch: target positions plus the
/// negatives sampled for them. Sampling happens serially, in batch order,
/// *before* the shards are dispatched — so the RNG stream is identical for
/// every thread count and negatives don't depend on scheduling.
struct BatchItem<'a> {
    user: usize,
    steps: &'a [Step],
    positions: Vec<usize>,
    negatives: Vec<Vec<usize>>,
    /// Number of BCE logit rows this item contributes (positives plus
    /// negatives over all target positions) — the shard weights.
    rows: usize,
}

/// Per-epoch and final training statistics.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub epoch_losses: Vec<f64>,
    /// Acyclicity residual per epoch.
    pub epoch_h: Vec<f64>,
    pub wall_seconds: f64,
}

/// Pre-registered handles for the training metrics (`None` while
/// observability is disabled, so the hot loop never touches the registry).
struct EpochTelemetry {
    batches: causer_obs::Counter,
    epochs: causer_obs::Counter,
    epoch_ms: causer_obs::Histogram,
    loss: causer_obs::Gauge,
    h_w: causer_obs::Gauge,
    rho: causer_obs::Gauge,
    alpha: causer_obs::Gauge,
    grad_norm: causer_obs::Gauge,
}

/// One epoch's emitted numbers (gauges + the `train.epoch` event fields).
struct EpochRecord {
    epoch: usize,
    loss_total: f64,
    loss_bce: f64,
    loss_reg: f64,
    loss_struct: f64,
    h: f64,
    alpha: f64,
    rho: f64,
    grad_norm: f64,
    epoch_ms: f64,
}

impl EpochTelemetry {
    fn new() -> Option<Self> {
        if !causer_obs::enabled() {
            return None;
        }
        let r = causer_obs::global();
        Some(EpochTelemetry {
            batches: r.counter(obs::TRAIN_BATCHES_TOTAL),
            epochs: r.counter(obs::TRAIN_EPOCHS_TOTAL),
            epoch_ms: r.histogram(obs::TRAIN_EPOCH_MS, causer_obs::Buckets::default_ms()),
            loss: r.gauge(obs::TRAIN_LOSS_TOTAL),
            h_w: r.gauge(obs::TRAIN_H_W),
            rho: r.gauge(obs::TRAIN_RHO),
            alpha: r.gauge(obs::TRAIN_ALPHA),
            grad_norm: r.gauge(obs::TRAIN_GRAD_NORM),
        })
    }

    /// Update the aggregate gauges/counters and emit the per-epoch
    /// `train.epoch` JSONL record.
    fn record_epoch(&self, rec: &EpochRecord) {
        self.epochs.inc();
        self.epoch_ms.observe(rec.epoch_ms);
        self.loss.set(rec.loss_total);
        self.h_w.set(rec.h);
        self.rho.set(rec.rho);
        self.alpha.set(rec.alpha);
        self.grad_norm.set(rec.grad_norm);
        causer_obs::emit(
            causer_obs::Event::new(obs::EV_TRAIN_EPOCH)
                .u("epoch", rec.epoch as u64)
                .f("loss_total", rec.loss_total)
                .f("loss_bce", rec.loss_bce)
                .f("loss_reg", rec.loss_reg)
                .f("loss_struct", rec.loss_struct)
                .f("h_w", rec.h)
                .f("alpha", rec.alpha)
                .f("rho", rec.rho)
                .f("grad_norm", rec.grad_norm)
                .f("epoch_ms", rec.epoch_ms),
        );
    }
}

/// Train a [`CauserModel`] on the training split (Algorithm 1).
pub fn train(model: &mut CauserModel, split: &LeaveLastOut, cfg: &TrainConfig) -> TrainReport {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = NegativeSampler::from_interactions(&to_interactions(split));
    let mut opt = Adam::new(cfg.lr);
    opt.weight_decay = cfg.weight_decay;
    // Dedicated optimizer for the per-epoch structure-fitting pass on W^c
    // (Algorithm 1 line 11 iterates parameter groups separately; fitting
    // W^c on large sequence batches keeps its gradient signal-to-noise
    // high enough to survive the L1/acyclicity pulls).
    let mut struct_opt = Adam::new(0.02);
    let mut report = TrainReport::default();
    // Worker pool with one reusable tape per thread; at one thread every
    // pass runs inline on this thread over the whole batch.
    let mut trainer = ParallelTrainer::from_config(cfg.threads);
    // Metric handles resolved once; `None` keeps the disabled hot path free
    // of registry lookups.
    let telemetry = EpochTelemetry::new();
    let want_split = telemetry.is_some();
    // Serial-branch side channel: the shard closure returns only the total
    // loss, so the BCE/regularizer split is stashed here when telemetry
    // wants it (the serial branch runs inline, so this is uncontended).
    let split_stash = std::sync::Mutex::new((0.0f64, 0.0f64));

    let mut beta1 = cfg.beta1;
    let mut beta2 = cfg.beta2;
    let mut h_prev = f64::INFINITY;

    let slow_ids = model.slow_update_params();
    let mut order: Vec<usize> = (0..split.train.len()).collect();

    // W^c and the structure intercept are trained exclusively by the
    // dedicated structure pass: the BCE path's gradient through Ŵ is
    // sign-degenerate (e_b^T V h_t can absorb any rescaling), so letting
    // the main loop update W^c turns it into a random walk that drowns the
    // structure signal. The main loop still *uses* W^c (filtering and Ŵ).
    let graph_ids = [model.causal.wc, model.struct_bias_id()];

    let eta_final = model.config.eta;
    for epoch in 0..cfg.epochs {
        let epoch_start = Instant::now();
        let _epoch_span = causer_obs::span(obs::SP_TRAIN_EPOCH);
        // Temperature annealing: start with soft assignments (η = 1) so the
        // clustering can organize, and harden geometrically toward the
        // configured η over the first two thirds of training (footnote 5:
        // assignment hardness is controlled through η). Fixing a hard η
        // from the start collapses cluster purity (winner-take-all).
        if eta_final < 1.0 {
            let progress = (epoch as f64 / (cfg.epochs as f64 * 2.0 / 3.0).max(1.0)).min(1.0);
            model.cluster.eta = eta_final.powf(progress);
        }
        // §III-C slow-update mode: freeze Θ_a and W^c except every n-th epoch.
        if let Some(every) = cfg.slow_update_every {
            let frozen = epoch % every != 0;
            for &id in &slow_ids {
                model.params.set_frozen(id, frozen);
            }
        }
        // Line 7–8: fix the item-level relations (and thus the filters) for
        // the epoch.
        let cache = model.relation_cache();
        order.shuffle(&mut rng);
        for &id in &graph_ids {
            model.params.set_frozen(id, true);
        }

        let mut epoch_loss = 0.0;
        let mut epoch_bce = 0.0;
        let mut epoch_reg = 0.0;
        let mut last_grad_norm = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            // Negative sampling happens here, serially and in chunk order,
            // so the RNG stream does not depend on the thread count.
            let mut items: Vec<BatchItem> = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                let user_hist: &UserHistory = &split.train[idx];
                let steps = &user_hist.steps;
                if steps.len() < 2 {
                    continue;
                }
                let first = if steps.len() > cfg.max_targets_per_user {
                    steps.len() - cfg.max_targets_per_user
                } else {
                    1
                };
                let positions: Vec<usize> = (first.max(1)..steps.len()).collect();
                let negatives: Vec<Vec<usize>> = positions
                    .iter()
                    .map(|&j| {
                        sampler.sample_excluding(
                            &mut rng,
                            cfg.neg_samples * steps[j].len(),
                            &steps[j],
                        )
                    })
                    .collect();
                let rows = positions
                    .iter()
                    .zip(negatives.iter())
                    .map(|(&j, negs)| steps[j].len() + negs.len())
                    .sum();
                items.push(BatchItem { user: user_hist.user, steps, positions, negatives, rows });
            }
            let total_rows: usize = items.iter().map(|it| it.rows).sum();
            if total_rows == 0 {
                continue;
            }

            let mut gs;
            if trainer.threads() == 1 {
                // Serial: one tape builds BCE and regularizer together —
                // exactly the legacy single-threaded loop.
                let (loss_val, store) =
                    trainer.for_each_shard(&items, &model.params, |g, gs, shard| {
                        let shared = model.shared_nodes(g);
                        let mut logits = Vec::new();
                        for item in shard {
                            logits.extend(model.sequence_logits(
                                g,
                                &shared,
                                &cache,
                                item.user,
                                item.steps,
                                &item.positions,
                                &item.negatives,
                            ));
                        }
                        let bce = model
                            .bce_from_logits(g, &logits)
                            .expect("chunk with rows produced no logits");
                        let reg = model.regularizer(g, &shared, beta1, beta2, cfg.aux_weight);
                        let loss = g.add(bce, reg);
                        let v = g.value(loss).item();
                        if want_split {
                            let bce_v = g.value(bce).item();
                            *split_stash.lock().expect("loss split stash poisoned") =
                                (bce_v, v - bce_v);
                        }
                        g.backward(loss, gs);
                        v
                    });
                epoch_loss += loss_val;
                if want_split {
                    let (b, r) = *split_stash.lock().expect("loss split stash poisoned");
                    epoch_bce += b;
                    epoch_reg += r;
                }
                gs = store;
            } else {
                // Data-parallel: each shard computes its BCE term seeded by
                // its share of the logit rows (the global mean BCE is the
                // row-weighted mean of the shard means); the regularizer is
                // computed once, on this thread, into the merged store.
                let (bce_loss, store) =
                    trainer.for_each_shard(&items, &model.params, |g, gs, shard| {
                        let shared = model.shared_nodes(g);
                        let mut logits = Vec::new();
                        for item in shard {
                            logits.extend(model.sequence_logits(
                                g,
                                &shared,
                                &cache,
                                item.user,
                                item.steps,
                                &item.positions,
                                &item.negatives,
                            ));
                        }
                        let Some(bce) = model.bce_from_logits(g, &logits) else {
                            return 0.0;
                        };
                        let w = logits.len() as f64 / total_rows as f64;
                        let v = g.value(bce).item() * w;
                        g.backward_seeded(bce, gs, w);
                        v
                    });
                gs = store;
                let tape = trainer.main_tape();
                let shared = model.shared_nodes(tape);
                let reg = model.regularizer(tape, &shared, beta1, beta2, cfg.aux_weight);
                let reg_val = tape.value(reg).item();
                tape.backward(reg, &mut gs);
                tape.reset();
                epoch_loss += bce_loss + reg_val;
                epoch_bce += bce_loss;
                epoch_reg += reg_val;
            }
            batches += 1;
            if let Some(t) = &telemetry {
                t.batches.inc();
            }
            last_grad_norm = gs.clip_global_norm(cfg.clip);
            opt.step(&mut model.params, &mut gs);
        }

        // Dedicated structure-fitting pass for W^c over large batches with
        // the current (constant) assignments.
        let struct_frozen = cfg.slow_update_every.map(|every| epoch % every != 0).unwrap_or(false);
        let mut struct_loss = 0.0;
        if cfg.struct_weight > 0.0 && !struct_frozen && model.config.variant.use_causal() {
            for &id in &graph_ids {
                model.params.set_frozen(id, false);
            }
            struct_loss = structure_pass(
                model,
                split,
                cfg,
                &mut struct_opt,
                beta1,
                beta2,
                &mut rng,
                &mut trainer,
            );
        }

        // Multiplier values *used* during this epoch (the dual update below
        // rewrites them for the next one) — what the telemetry reports.
        let (alpha_used, rho_used) = (beta1, beta2);

        // Lines 14–15: dual updates on the acyclicity residual. A short
        // warm-up lets the structure fit orient edges before the penalty
        // starts locking directions in.
        let h = model.causal.acyclicity_value(&model.params);
        if epoch >= 2 {
            beta1 += beta2 * h;
            if h.abs() >= cfg.kappa2 * h_prev.abs() && beta2 < 1e12 {
                beta2 *= cfg.kappa1;
            }
        }
        h_prev = h;

        let mean_loss = if batches > 0 { epoch_loss / batches as f64 } else { 0.0 };
        report.epoch_losses.push(mean_loss);
        report.epoch_h.push(h);
        if let Some(t) = &telemetry {
            let denom = batches.max(1) as f64;
            t.record_epoch(&EpochRecord {
                epoch,
                loss_total: mean_loss,
                loss_bce: epoch_bce / denom,
                loss_reg: epoch_reg / denom,
                loss_struct: struct_loss,
                h,
                alpha: alpha_used,
                rho: rho_used,
                grad_norm: last_grad_norm,
                epoch_ms: epoch_start.elapsed().as_secs_f64() * 1e3,
            });
        }
        if cfg.verbose {
            causer_obs::logln!(
                "epoch {epoch:>3}: loss {mean_loss:.4}  h(Wc) {h:.3e}  beta2 {beta2:.1e}"
            );
        }
    }
    // Unfreeze everything before handing the model back.
    for &id in &slow_ids {
        model.params.set_frozen(id, false);
    }
    for &id in &graph_ids {
        model.params.set_frozen(id, false);
    }
    model.cluster.eta = eta_final;
    report.wall_seconds = start.elapsed().as_secs_f64();
    report
}

/// One pass of NOTEARS-style structure fitting: regress each step's
/// cluster-indicator vector on the discounted history context through
/// `W^c`, over large sequence batches, updating only `W^c` and the
/// regression intercept (assignments enter as constants). Returns the mean
/// per-chunk structure loss (fit + L1 + acyclicity penalties) for the
/// epoch telemetry; 0 when no chunk had usable sequences.
#[allow(clippy::too_many_arguments)]
fn structure_pass(
    model: &mut CauserModel,
    split: &LeaveLastOut,
    cfg: &TrainConfig,
    opt: &mut Adam,
    beta1: f64,
    beta2: f64,
    rng: &mut StdRng,
    trainer: &mut ParallelTrainer,
) -> f64 {
    let _span = causer_obs::span(obs::SP_TRAIN_STRUCT);
    let mut loss_total = 0.0;
    let mut chunks = 0usize;
    let assign = model.cluster.assignments_plain(&model.params);
    let mut order: Vec<usize> = (0..split.train.len()).collect();
    order.shuffle(rng);
    for chunk in order.chunks(256) {
        // Sequences with at least two steps, plus the chunk-wide step count
        // — known up front, so shards can scale their fit terms by the
        // global denominator and the sharded sum equals the serial term.
        let seqs: Vec<&Vec<Step>> =
            chunk.iter().map(|&idx| &split.train[idx].steps).filter(|seq| seq.len() >= 2).collect();
        let steps_total: usize = seqs.iter().map(|seq| seq.len() - 1).sum();
        if steps_total == 0 {
            continue;
        }
        let fit_scale = cfg.struct_weight / steps_total as f64;

        // Per-shard discounted-context regression on `W^c`. Each worker
        // carries the global `1/steps_total` scaling, so seeding each
        // shard's backward with 1.0 sums to the serial fit gradient.
        let fit_shard = |g: &mut causer_tensor::Graph, shard: &[&Vec<Step>]| {
            let a = g.constant(assign.clone());
            let wc = model.causal.node(g, &model.params);
            let bias = model.struct_bias_node(g);
            let mut acc: Option<causer_tensor::NodeId> = None;
            for seq in shard {
                let s = g.embed_bag(a, seq, false);
                let mut ctx = g.select_rows(s, &[0]);
                for t in 1..seq.len() {
                    let trans = g.matmul(ctx, wc);
                    let pred = g.add(trans, bias);
                    let target = g.select_rows(s, &[t]);
                    let diff = g.sub(target, pred);
                    let sq = g.mul(diff, diff);
                    let l = g.sum_all(sq);
                    acc = Some(match acc {
                        None => l,
                        Some(prev) => g.add(prev, l),
                    });
                    let dec = g.scale(ctx, 0.7);
                    ctx = g.add(dec, target);
                }
            }
            acc.map(|acc| g.scale(acc, fit_scale))
        };

        let mut gs;
        if trainer.threads() == 1 {
            // Serial: one tape, combined fit + penalty loss, one backward —
            // exactly the legacy pass (same node order, same accumulation
            // order into the store).
            let (chunk_loss, store) =
                trainer.for_each_shard(&seqs, &model.params, |g, gs, shard| {
                    let fit = fit_shard(g, shard).expect("chunk with steps produced no fit");
                    let l1 = model.causal.l1_penalty(g, &model.params, model.config.lambda);
                    let h = model.causal.acyclicity_node(g, &model.params);
                    let lin = g.scale(h, beta1);
                    let hsq = g.mul(h, h);
                    let quad = g.scale(hsq, beta2 / 2.0);
                    let loss = g.add(fit, l1);
                    let loss = g.add(loss, lin);
                    let loss = g.add(loss, quad);
                    let v = g.value(loss).item();
                    g.backward(loss, gs);
                    v
                });
            loss_total += chunk_loss;
            gs = store;
        } else {
            let (fit_loss, store) = trainer.for_each_shard(&seqs, &model.params, |g, gs, shard| {
                let Some(fit) = fit_shard(g, shard) else { return 0.0 };
                let v = g.value(fit).item();
                g.backward(fit, gs);
                v
            });
            gs = store;
            // The L1 / acyclicity penalties are global terms on `W^c`;
            // compute them once here and fold them into the merged store.
            let tape = trainer.main_tape();
            let l1 = model.causal.l1_penalty(tape, &model.params, model.config.lambda);
            let h = model.causal.acyclicity_node(tape, &model.params);
            let lin = tape.scale(h, beta1);
            let hsq = tape.mul(h, h);
            let quad = tape.scale(hsq, beta2 / 2.0);
            let loss = tape.add(l1, lin);
            let loss = tape.add(loss, quad);
            loss_total += fit_loss + tape.value(loss).item();
            tape.backward(loss, &mut gs);
            tape.reset();
        }
        chunks += 1;
        opt.step(&mut model.params, &mut gs);
    }
    if chunks > 0 {
        loss_total / chunks as f64
    } else {
        0.0
    }
}

/// Rebuild an `Interactions` view over the training split (for popularity
/// counting in the negative sampler).
fn to_interactions(split: &LeaveLastOut) -> causer_data::Interactions {
    causer_data::Interactions {
        num_users: split.num_users,
        num_items: split.num_items,
        sequences: {
            let mut seqs = vec![Vec::new(); split.num_users];
            for h in &split.train {
                seqs[h.user] = h.steps.clone();
            }
            seqs
        },
    }
}

/// Convenience: sample `n` distinct target positions for long sequences.
pub fn sample_positions<R: Rng + ?Sized>(rng: &mut R, len: usize, n: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (1..len).collect();
    all.shuffle(rng);
    all.truncate(n);
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CauserConfig, CauserModel};
    use crate::variants::CauserVariant;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    fn tiny_setup(variant: CauserVariant) -> (CauserModel, causer_data::LeaveLastOut) {
        let mut profile = DatasetProfile::paper(DatasetKind::Baby).scaled(0.004);
        profile.p_basket = 0.0;
        let sim = simulate(&profile, 11);
        let split = sim.interactions.leave_last_out();
        let mut cfg = CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
        cfg.variant = variant;
        cfg.k = 4;
        cfg.d1 = 12;
        cfg.d2 = 10;
        cfg.hidden_dim = 12;
        cfg.item_out_dim = 10;
        cfg.user_dim = 4;
        let model = CauserModel::new(cfg, sim.features.clone(), 3);
        (model, split)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (mut model, split) = tiny_setup(CauserVariant::Full);
        let cfg = TrainConfig { epochs: 6, batch_size: 16, lr: 0.01, ..Default::default() };
        let report = train(&mut model, &split, &cfg);
        assert_eq!(report.epoch_losses.len(), 6);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn acyclicity_residual_stays_controlled() {
        let (mut model, split) = tiny_setup(CauserVariant::Full);
        let cfg = TrainConfig { epochs: 8, batch_size: 16, ..Default::default() };
        let report = train(&mut model, &split, &cfg);
        let final_h = *report.epoch_h.last().unwrap();
        assert!(final_h.abs() < 0.1, "h did not stay controlled: {final_h}");
    }

    #[test]
    fn slow_update_freezes_and_unfreezes() {
        let (mut model, split) = tiny_setup(CauserVariant::Full);
        let wc_before = model.causal.value(&model.params);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            slow_update_every: Some(10), // only epoch 0 updates Wc
            ..Default::default()
        };
        let _ = train(&mut model, &split, &cfg);
        // After training everything must be unfrozen again.
        for id in model.slow_update_params() {
            assert!(!model.params.is_frozen(id));
        }
        // Wc still moved (epoch 0 was an update epoch).
        let wc_after = model.causal.value(&model.params);
        assert!(wc_before.sub(&wc_after).max_abs() > 0.0);
    }

    #[test]
    fn all_variants_train_without_panic() {
        for variant in CauserVariant::ALL {
            let (mut model, split) = tiny_setup(variant);
            let cfg = TrainConfig { epochs: 1, batch_size: 16, ..Default::default() };
            let report = train(&mut model, &split, &cfg);
            assert!(report.epoch_losses[0].is_finite(), "{variant:?}");
        }
    }

    #[test]
    fn sample_positions_sorted_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = sample_positions(&mut rng, 20, 5);
        assert_eq!(p.len(), 5);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(p.iter().all(|&x| (1..20).contains(&x)));
    }
}
