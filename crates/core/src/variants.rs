//! The ablation variants of Table V.

use serde::{Deserialize, Serialize};

/// Which components of the full Causer model are active.
///
/// - [`CauserVariant::NoClusterLoss`] — "Causer (-clus)": drop eq. (7);
/// - [`CauserVariant::NoReconstructionLoss`] — "Causer (-rec)": drop eq. (8);
/// - [`CauserVariant::NoAttention`] — "Causer (-att)": α_t ≡ 1;
/// - [`CauserVariant::NoCausal`] — "Causer (-causal)": drop Ŵ and the
///   history filtering, leaving a plain attentive RNN.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CauserVariant {
    Full,
    NoClusterLoss,
    NoReconstructionLoss,
    NoAttention,
    NoCausal,
}

impl CauserVariant {
    pub const ALL: [CauserVariant; 5] = [
        CauserVariant::Full,
        CauserVariant::NoClusterLoss,
        CauserVariant::NoReconstructionLoss,
        CauserVariant::NoAttention,
        CauserVariant::NoCausal,
    ];

    /// Use the local attention α_t?
    pub fn use_attention(&self) -> bool {
        !matches!(self, CauserVariant::NoAttention)
    }

    /// Use the causal filter and the global causal effect Ŵ?
    pub fn use_causal(&self) -> bool {
        !matches!(self, CauserVariant::NoCausal)
    }

    /// Include the clustering loss of eq. (7)?
    pub fn use_cluster_loss(&self) -> bool {
        !matches!(self, CauserVariant::NoClusterLoss)
    }

    /// Include the reconstruction loss of eq. (8)?
    pub fn use_reconstruction_loss(&self) -> bool {
        !matches!(self, CauserVariant::NoReconstructionLoss)
    }

    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            CauserVariant::Full => "Causer",
            CauserVariant::NoClusterLoss => "Causer (-clus)",
            CauserVariant::NoReconstructionLoss => "Causer (-rec)",
            CauserVariant::NoAttention => "Causer (-att)",
            CauserVariant::NoCausal => "Causer (-causal)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_uses_everything() {
        let f = CauserVariant::Full;
        assert!(f.use_attention() && f.use_causal());
        assert!(f.use_cluster_loss() && f.use_reconstruction_loss());
    }

    #[test]
    fn each_ablation_disables_exactly_one_component() {
        for v in CauserVariant::ALL {
            let flags = [
                v.use_attention(),
                v.use_causal(),
                v.use_cluster_loss(),
                v.use_reconstruction_loss(),
            ];
            let disabled = flags.iter().filter(|&&f| !f).count();
            let expected = usize::from(v != CauserVariant::Full);
            assert_eq!(disabled, expected, "{v:?}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            CauserVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), CauserVariant::ALL.len());
    }
}
