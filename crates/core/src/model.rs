//! The Causer model (§III): a sequential recommender whose history is
//! causally filtered by a learned cluster-level causal graph.
//!
//! Implements eq. (10):
//!
//! ```text
//! h_{t+1} = g(h_t, v⃗_t ⊙ 1(W_{·b} > ε), u)
//! f(b | H, u) = σ( e_b^T ( V Σ_t Ŵ_{v⃗_t b} α_t h_t ) )
//! ```
//!
//! with `W` induced from the cluster graph by eq. (9). Training uses the
//! autodiff substrate; inference and explanation use plain-matrix forwards
//! with candidate items **grouped by their hard cluster** so the whole
//! catalog is scored with at most `K` filtered RNN runs (this is why the
//! paper's inference overhead is only ~1.16× the base model — the η→0 hard
//! limit of footnote 5).

use crate::attention::BilinearAttention;
use crate::causal_graph::{ClusterCausalGraph, ItemRelationCache};
use crate::clustering::ClusterModule;
use crate::rnn::{Cell, PlainState, RnnKind};
use crate::variants::CauserVariant;
use causer_data::Step;
use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of a Causer model (Table III ranges; defaults are the
/// tuned values used by the experiment harness).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CauserConfig {
    pub rnn: RnnKind,
    pub variant: CauserVariant,
    pub num_users: usize,
    pub num_items: usize,
    pub feature_dim: usize,
    /// Encoder hidden width (eq. 6).
    pub d1: usize,
    /// Item embedding size `d2` (encoder output, part of the RNN input).
    pub d2: usize,
    /// Free (identity) item input embedding size, concatenated with the
    /// encoder output — the paper's `Θ_e` item embeddings.
    pub item_in_dim: usize,
    pub user_dim: usize,
    pub hidden_dim: usize,
    /// Output item embedding size `d_e`.
    pub item_out_dim: usize,
    /// Number of latent clusters `K`.
    pub k: usize,
    /// Assignment softmax temperature η.
    pub eta: f64,
    /// Causal filter threshold ε.
    pub epsilon: f64,
    /// L1 sparsity coefficient λ on `W^c`.
    pub lambda: f64,
    /// History window fed to the RNN.
    pub max_history: usize,
}

impl CauserConfig {
    /// Reasonable defaults for the scaled experiments.
    pub fn new(num_users: usize, num_items: usize, feature_dim: usize) -> Self {
        CauserConfig {
            rnn: RnnKind::Gru,
            variant: CauserVariant::Full,
            num_users,
            num_items,
            feature_dim,
            d1: 32,
            d2: 24,
            item_in_dim: 16,
            user_dim: 8,
            hidden_dim: 32,
            item_out_dim: 24,
            k: 8,
            eta: 0.02,
            epsilon: 0.1,
            lambda: 1e-4,
            max_history: 12,
        }
    }
}

/// The Causer model: parameters plus the raw item features it encodes.
pub struct CauserModel {
    pub config: CauserConfig,
    pub params: ParamSet,
    pub cluster: ClusterModule,
    pub causal: ClusterCausalGraph,
    pub cell: Cell,
    pub attention: BilinearAttention,
    /// `V ∈ R^{d_h × d_e}` adapting hidden states to the embedding space.
    v: ParamId,
    /// Independent output item embeddings `e_b` (`|V| × d_e`).
    item_out: ParamId,
    /// Free item *input* embeddings (`|V| × item_in_dim`).
    item_in: ParamId,
    /// Learnable per-item output bias (captures popularity).
    item_bias: ParamId,
    /// Intercept of the structure-fitting regression (`1 × K`): absorbs
    /// cluster base rates so `W^c` captures *transitions*, not popularity.
    struct_bias: ParamId,
    /// User embeddings (`|U| × user_dim`).
    user_emb: ParamId,
    /// Constant raw item features (`|V| × feature_dim`).
    pub features: Matrix,
}

/// Shared per-graph nodes reused by every sequence in a batch.
pub struct SharedNodes {
    pub item_embs: NodeId,
    pub item_in: NodeId,
    pub assignments: NodeId,
    pub wc: NodeId,
    pub item_out: NodeId,
    pub item_bias: NodeId,
    pub v: NodeId,
    pub user_emb: NodeId,
}

/// One scored candidate: its logit node and binary target.
pub struct CandidateLogit {
    pub logit: NodeId,
    pub target: f64,
}

/// Plain-matrix state reused across inference calls.
pub struct InferenceCache {
    pub item_embs: Matrix,
    pub rel: ItemRelationCache,
    pub hard_clusters: Vec<usize>,
    pub wc: Matrix,
}

/// A prepared plain-matrix forward over one (possibly causally filtered)
/// history: `c_mat` holds `C_t = α_t (h_t V)` stacked `T×d_e`, `s_bags` the
/// summed assignment rows of the kept items per step (`T×K`), and `alpha`
/// the raw attention weights. Produced by [`CauserModel::history_run`] and
/// consumed by the candidate-scoring helpers shared between the per-user
/// path and the batched serving engine.
#[derive(Clone)]
pub struct HistoryRun {
    pub c_mat: Matrix,
    pub s_bags: Matrix,
    pub alpha: Vec<f64>,
}

/// Incrementally maintained encoder state for one (possibly causally
/// filtered) stream of a user's history — the unit the serving-side
/// `UserStateStore` persists per user per cluster.
///
/// Where [`CauserModel::history_run`] re-encodes the whole history from
/// scratch, a `StreamState` is advanced by [`CauserModel::advance_stream`]
/// with one `step_plain` per *new* kept step: the RNN state (hidden plus the
/// LSTM carry when present), the stacked hidden states, and the unscaled
/// context rows all grow append-only. Only the attention weights and the
/// `α`-scaled context matrix are rebuilt after an append, because attention
/// re-weights the entire stack whenever the summary state moves.
#[derive(Clone)]
pub struct StreamState {
    /// RNN state after the last kept step (`h`, and the carry `c` for LSTM).
    state: PlainState,
    /// Stacked hidden states of every kept step (`T×d_h`); attention needs
    /// the whole stack each time the stream advances.
    h_stack: Matrix,
    /// `h_stack · V` (`T×d_e`), unscaled by attention — one new row per kept
    /// step, never a full re-multiply.
    hv: Matrix,
    /// The prepared run consumed by the scoring helpers; identical to what
    /// [`CauserModel::history_run`] would return over the consumed steps.
    run: HistoryRun,
}

impl StreamState {
    /// Kept (non-filtered, non-empty) steps consumed so far.
    pub fn steps(&self) -> usize {
        self.h_stack.rows()
    }

    /// The prepared run, or `None` while no step survived the filter — the
    /// exact condition under which [`CauserModel::history_run`] returns
    /// `None` and scoring falls back to the unfiltered Ŵ≡1 path.
    pub fn run(&self) -> Option<&HistoryRun> {
        if self.steps() > 0 {
            Some(&self.run)
        } else {
            None
        }
    }

    /// The RNN state after the last kept step (exposes the LSTM carry).
    pub fn state(&self) -> &PlainState {
        &self.state
    }

    /// Approximate resident size in bytes — every matrix and vector this
    /// stream keeps alive, the quantity the serving state store charges
    /// against its memory budget.
    pub fn approx_bytes(&self) -> usize {
        8 * (self.h_stack.len()
            + self.hv.len()
            + self.run.c_mat.len()
            + self.run.s_bags.len()
            + self.run.alpha.len()
            + self.state.num_scalars())
    }
}

/// Reusable scratch matrices for [`CauserModel::score_candidates_with_run`].
/// One set per scoring thread; reusing them across requests keeps the
/// serving hot path allocation-free in steady state.
#[derive(Default)]
pub struct ScoreBufs {
    /// `S · W^c` (`T×K`).
    bmat: Matrix,
    /// `Ŵ` — causal effects per (step, candidate) (`T×n`).
    what: Matrix,
    /// Per-candidate context rows `Ŵᵀ C` (`n×d_e`).
    vh: Matrix,
    /// Gathered assignment rows of the candidate set (`n×K`).
    assign: Matrix,
}

impl ScoreBufs {
    pub fn new() -> Self {
        ScoreBufs::default()
    }
}

impl CauserModel {
    pub fn new(config: CauserConfig, features: Matrix, seed: u64) -> Self {
        assert_eq!(features.rows(), config.num_items, "feature rows must match num_items");
        assert_eq!(features.cols(), config.feature_dim, "feature dim mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let cluster = ClusterModule::new(
            &mut ps,
            "cluster",
            config.num_items,
            config.feature_dim,
            config.d1,
            config.d2,
            config.k,
            config.eta,
            &mut rng,
        );
        let causal = ClusterCausalGraph::new(&mut ps, "causal", config.k, &mut rng);
        let cell = Cell::new(
            config.rnn,
            &mut ps,
            "rnn",
            config.d2 + config.item_in_dim + config.user_dim,
            config.hidden_dim,
            &mut rng,
        );
        let attention = BilinearAttention::new(&mut ps, "att", config.hidden_dim, &mut rng);
        let v = ps.add("V", init::xavier(&mut rng, config.hidden_dim, config.item_out_dim));
        let item_out =
            ps.add("item_out", init::normal(&mut rng, config.num_items, config.item_out_dim, 0.1));
        let item_in =
            ps.add("item_in", init::normal(&mut rng, config.num_items, config.item_in_dim, 0.1));
        let item_bias = ps.add("item_bias", Matrix::zeros(config.num_items, 1));
        let struct_bias = ps.add("struct_bias", Matrix::zeros(1, config.k));
        let user_emb =
            ps.add("user_emb", init::normal(&mut rng, config.num_users, config.user_dim, 0.1));
        CauserModel {
            config,
            params: ps,
            cluster,
            causal,
            cell,
            attention,
            v,
            item_in,
            item_out,
            item_bias,
            struct_bias,
            user_emb,
            features,
        }
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// The output item embedding matrix `E_out` (`|V| × d_e`).
    pub fn item_out_matrix(&self) -> &Matrix {
        self.params.value(self.item_out)
    }

    /// The per-item output bias column (`|V| × 1`).
    pub fn item_bias_matrix(&self) -> &Matrix {
        self.params.value(self.item_bias)
    }

    /// Parameter ids of `Θ_a ∪ {W^c}` — frozen in the "slow update"
    /// efficiency mode of §III-C.
    pub fn slow_update_params(&self) -> Vec<ParamId> {
        let mut ids: Vec<ParamId> = self
            .params
            .iter()
            .filter(|(_, name, _)| name.starts_with("cluster.") || name.starts_with("causal."))
            .map(|(id, _, _)| id)
            .collect();
        ids.dedup();
        ids
    }

    /// Start-of-epoch item relation cache (Algorithm 1, line 7).
    pub fn relation_cache(&self) -> ItemRelationCache {
        let assign = self.cluster.assignments_plain(&self.params);
        let wc = self.causal.value(&self.params);
        ItemRelationCache::build(assign, &wc)
    }

    /// Plain-matrix caches for inference.
    pub fn inference_cache(&self) -> InferenceCache {
        let item_embs = self.cluster.encode_plain(&self.params, &self.features);
        let rel = self.relation_cache();
        let hard_clusters = self.cluster.hard_clusters(&self.params);
        let wc = self.causal.value(&self.params);
        InferenceCache { item_embs, rel, hard_clusters, wc }
    }

    /// The model-level serving cache (cluster grouping, gathered assignment
    /// rows, total causal effects) for a given inference cache.
    pub fn cluster_effect_cache(
        &self,
        ic: &InferenceCache,
    ) -> crate::causal_graph::ClusterEffectCache {
        crate::causal_graph::ClusterEffectCache::build(&ic.rel, &ic.hard_clusters, &ic.wc)
    }

    /// Register the per-graph shared nodes.
    pub fn shared_nodes(&self, g: &mut Graph) -> SharedNodes {
        let features = g.constant(self.features.clone());
        let item_embs = self.cluster.encode(g, &self.params, features);
        let assignments = self.cluster.assignments(g, &self.params);
        let wc = self.causal.node(g, &self.params);
        let item_in = g.param(&self.params, self.item_in);
        let item_out = g.param(&self.params, self.item_out);
        let item_bias = g.param(&self.params, self.item_bias);
        let v = g.param(&self.params, self.v);
        let user_emb = g.param(&self.params, self.user_emb);
        SharedNodes { item_embs, item_in, assignments, wc, item_out, item_bias, v, user_emb }
    }

    /// Causal filter for candidate `b`: per history step, the items `a`
    /// with `W_ab > ε` (eq. 10's `v⃗_t ⊙ 1(W_{·b} > ε)`).
    pub fn filter_history(
        &self,
        cache: &ItemRelationCache,
        history: &[Step],
        b: usize,
    ) -> Vec<Vec<usize>> {
        if !self.config.variant.use_causal() {
            return history.to_vec();
        }
        history
            .iter()
            .map(|step| {
                step.iter().copied().filter(|&a| cache.w_ab(a, b) > self.config.epsilon).collect()
            })
            .collect()
    }

    /// Run the RNN over the non-empty filtered steps of a history; returns
    /// `(stacked hidden states T×d_h, attention α T×1, cluster bags T×K)`
    /// or `None` when every step was filtered out.
    fn run_filtered_history(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        user: usize,
        kept: &[Vec<usize>],
    ) -> Option<(NodeId, NodeId, NodeId)> {
        let bags: Vec<Vec<usize>> = kept.iter().filter(|s| !s.is_empty()).cloned().collect();
        if bags.is_empty() {
            return None;
        }
        let user_row = g.select_rows(shared.user_emb, &[user]);
        let mut state = self.cell.init_state(g, 1);
        let mut hs = Vec::with_capacity(bags.len());
        for bag in &bags {
            let x_enc = g.embed_bag(shared.item_embs, std::slice::from_ref(bag), false);
            let x_free = g.embed_bag(shared.item_in, std::slice::from_ref(bag), false);
            let x_items = g.concat_cols(x_enc, x_free);
            let x = g.concat_cols(x_items, user_row);
            state = self.cell.step(g, &self.params, x, &state);
            hs.push(state.h);
        }
        let h_stack = g.vstack(&hs);
        let alpha = if self.config.variant.use_attention() {
            self.attention.weights(g, &self.params, h_stack, state.h)
        } else {
            g.constant(Matrix::ones(bags.len(), 1))
        };
        let s_bags = g.embed_bag(shared.assignments, &bags, false);
        Some((h_stack, alpha, s_bags))
    }

    /// Score one candidate against a prepared history run. `what_const`
    /// replaces the causal effect Ŵ with a constant: `Some(1.0)` for the
    /// `-causal` ablation, `Some(ε)` for the empty-filter fallback (ε keeps
    /// the fallback's logit amplitude commensurate with the filtered path,
    /// whose Ŵ values hover just above ε).
    fn candidate_logit(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        run: &(NodeId, NodeId, NodeId),
        b: usize,
        what_const: Option<f64>,
    ) -> NodeId {
        let (h_stack, alpha, s_bags) = *run;
        let what = match what_const {
            None => {
                let b_assign = g.select_rows(shared.assignments, &[b]); // 1×K
                let wcb = g.matmul_nt(shared.wc, b_assign); // K×1
                g.matmul(s_bags, wcb) // T×1: Ŵ_{v⃗_t b}
            }
            Some(w) => {
                let (t, _) = g.shape(alpha);
                g.constant(Matrix::full(t, 1, w))
            }
        };
        let w = g.mul(what, alpha); // T×1
                                    // Normalize Ŵ·α to a convex combination: raw Ŵ magnitudes differ
                                    // across candidates (and vs. the Ŵ≡const fallback), which would make
                                    // the context term's *scale* — not its content — drive cross-
                                    // candidate ranking. Normalizing preserves which steps each
                                    // candidate attends to while making scores comparable.
        let wsum = g.sum_all(w);
        let wsum = g.add_scalar(wsum, 1e-8);
        let w = g.div_scalar(w, wsum);
        let weighted = g.matmul_tn(w, h_stack); // 1×d_h
        let vh = g.matmul(weighted, shared.v); // 1×d_e
        let e_b = g.select_rows(shared.item_out, &[b]); // 1×d_e
        let dot = g.dot_rows(vh, e_b); // 1×1
        let bias = g.select_rows(shared.item_bias, &[b]);
        g.add(dot, bias)
    }

    /// Build the BCE logit terms for one training sequence: for each step
    /// `j ≥ 1` predict its items from the (causally filtered) prefix, with
    /// `negatives[j]` as sampled negatives. Candidates sharing a filter
    /// pattern share one RNN run.
    #[allow(clippy::too_many_arguments)]
    pub fn sequence_logits(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        cache: &ItemRelationCache,
        user: usize,
        steps: &[Step],
        target_positions: &[usize],
        negatives: &[Vec<usize>],
    ) -> Vec<CandidateLogit> {
        let mut out = Vec::new();
        for (pos_idx, &j) in target_positions.iter().enumerate() {
            debug_assert!(j >= 1 && j < steps.len());
            let start = j.saturating_sub(self.config.max_history);
            let history = &steps[start..j];
            let mut candidates: Vec<(usize, f64)> = steps[j].iter().map(|&b| (b, 1.0)).collect();
            candidates.extend(negatives[pos_idx].iter().map(|&b| (b, 0.0)));

            // Group candidates by filter pattern: same kept items => same RNN.
            type Group = (Vec<Vec<usize>>, Vec<(usize, f64)>);
            let mut groups: Vec<Group> = Vec::new();
            for (b, target) in candidates {
                let kept = self.filter_history(cache, history, b);
                match groups.iter_mut().find(|(k, _)| *k == kept) {
                    Some((_, members)) => members.push((b, target)),
                    None => groups.push((kept, vec![(b, target)])),
                }
            }
            // The unfiltered run is shared by every candidate whose filter
            // empties the history (the Ŵ≡1 fallback) — built lazily.
            let mut unfiltered_run = None;
            for (kept, members) in groups {
                match self.run_filtered_history(g, shared, user, &kept) {
                    Some(run) => {
                        let what_const =
                            if self.config.variant.use_causal() { None } else { Some(1.0) };
                        for (b, target) in members {
                            let logit = self.candidate_logit(g, shared, &run, b, what_const);
                            out.push(CandidateLogit { logit, target });
                        }
                    }
                    None => {
                        // Every step was filtered out. The paper only defines
                        // skipping *steps*; for a fully-empty history we fall
                        // back to the unfiltered history with Ŵ ≡ 1 (the
                        // "-causal" path), which keeps root-cluster items
                        // recommendable instead of degenerating to σ(0).
                        if unfiltered_run.is_none() {
                            unfiltered_run = self.run_filtered_history(g, shared, user, history);
                        }
                        match &unfiltered_run {
                            Some(run) => {
                                for (b, target) in members {
                                    // Ŵ ≡ 1: normalization makes the constant
                                    // cancel, leaving pure attention weights.
                                    let logit = self.candidate_logit(g, shared, run, b, Some(1.0));
                                    out.push(CandidateLogit { logit, target });
                                }
                            }
                            None => {
                                // History itself is empty: uniform (Remark 2).
                                for (_, target) in members {
                                    let logit = g.constant(Matrix::scalar(0.0));
                                    out.push(CandidateLogit { logit, target });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Combine candidate logits into the mean BCE loss of eq. (11).
    pub fn bce_from_logits(&self, g: &mut Graph, logits: &[CandidateLogit]) -> Option<NodeId> {
        if logits.is_empty() {
            return None;
        }
        let nodes: Vec<NodeId> = logits.iter().map(|c| c.logit).collect();
        let stacked = g.vstack(&nodes);
        let targets = Matrix::from_vec(logits.len(), 1, logits.iter().map(|c| c.target).collect());
        Some(g.bce_with_logits(stacked, &targets))
    }

    /// Node for the structure-regression intercept (used by the training
    /// loop's dedicated structure pass).
    pub fn struct_bias_node(&self, g: &mut Graph) -> NodeId {
        g.param(&self.params, self.struct_bias)
    }

    /// Parameter id of the structure-regression intercept.
    pub fn struct_bias_id(&self) -> ParamId {
        self.struct_bias
    }

    /// NOTEARS-style structure-fitting term on one behaviour sequence: the
    /// cluster-indicator vector of each step is regressed on a
    /// recency-discounted sum of its history's cluster vectors through
    /// `W^c` — eq. (3)'s `||x_j − x^T W_{·j}||²` applied at the cluster
    /// level to sequential data. This is what ties `W^c` to the *direction*
    /// of behaviour transitions (parents precede children); the BCE path
    /// alone is sign-degenerate in `Ŵ` because `e_b^T V h_t` can absorb any
    /// rescaling.
    pub fn structure_fit_loss(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        steps: &[Step],
    ) -> Option<NodeId> {
        if steps.len() < 2 || !self.config.variant.use_causal() {
            return None;
        }
        let gamma = 0.7; // recency discount of the history context
        let s = g.embed_bag(shared.assignments, steps, false); // T × K
        let bias = g.param(&self.params, self.struct_bias); // 1 × K intercept
        let mut ctx = g.select_rows(s, &[0]); // 1 × K
        let mut total: Option<NodeId> = None;
        for t in 1..steps.len() {
            let trans = g.matmul(ctx, shared.wc); // 1 × K
            let pred = g.add(trans, bias);
            let target = g.select_rows(s, &[t]);
            let diff = g.sub(target, pred);
            let sq = g.mul(diff, diff);
            let loss_t = g.sum_all(sq);
            total = Some(match total {
                None => loss_t,
                Some(acc) => g.add(acc, loss_t),
            });
            let decayed = g.scale(ctx, gamma);
            ctx = g.add(decayed, target);
        }
        total.map(|t| g.scale(t, 1.0 / (steps.len() - 1) as f64))
    }

    /// The auxiliary losses of eq. (11): `λ||W^c||₁ + recon + cluster`
    /// plus the augmented-Lagrangian acyclicity terms `β₁ b + (β₂/2) b²`.
    pub fn regularizer(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        beta1: f64,
        beta2: f64,
        aux_weight: f64,
    ) -> NodeId {
        let mut total = self.causal.l1_penalty(g, &self.params, self.config.lambda);
        if self.config.variant.use_cluster_loss() {
            let lc =
                self.cluster.clustering_loss(g, &self.params, shared.item_embs, shared.assignments);
            let lc = g.scale(lc, aux_weight);
            total = g.add(total, lc);
        }
        if self.config.variant.use_reconstruction_loss() {
            let lr =
                self.cluster.reconstruction_loss(g, &self.params, shared.item_embs, &self.features);
            let lr = g.scale(lr, aux_weight);
            total = g.add(total, lr);
        }
        let h = self.causal.acyclicity_node(g, &self.params);
        let lin = g.scale(h, beta1);
        let hsq = g.mul(h, h);
        let quad = g.scale(hsq, beta2 / 2.0);
        let total = g.add(total, lin);
        g.add(total, quad)
    }

    /// Clamp a history to the model's window.
    pub fn clamp_history(&self, history: &[Step]) -> Vec<Step> {
        history
            .iter()
            .skip(history.len().saturating_sub(self.config.max_history))
            .cloned()
            .collect()
    }

    /// The shared Ŵ≡1 context row `vh = Σ_t α_t (h_t V) / Σ_t α_t`, used by
    /// the `-causal` variant (every candidate) and by the empty-filter
    /// fallback of the causal path.
    pub fn uniform_vh(&self, run: &HistoryRun) -> Vec<f64> {
        let denom: f64 = run.alpha.iter().sum::<f64>().max(1e-8);
        run.c_mat.sum_rows().row(0).iter().map(|&v| v / denom).collect()
    }

    /// Score one candidate against a shared context row.
    #[inline]
    pub fn score_one_with_vh(&self, vh: &[f64], b: usize) -> f64 {
        let e_out = self.params.value(self.item_out);
        let bias = self.params.value(self.item_bias);
        // The dispatched dot keeps this bitwise-aligned with the batched
        // `matmul_nt` fast path at every kernel tier (each `matmul_nt`
        // element runs the same dot sequence as `simd::dot`).
        bias.get(b, 0) + causer_tensor::simd::dot(vh, e_out.row(b))
    }

    /// Score a cluster group's candidates against one prepared history run.
    /// `cand_assign` holds the gathered assignment rows of `cand` (`n×K`);
    /// `out[i]` receives the score of `cand[i]`.
    ///
    /// The Ŵ matrix (`T×n`) and the per-candidate context rows (`n×d_e`) are
    /// computed with the blocked `matmul_nt`/`matmul_tn` kernels, whose
    /// per-element accumulation order — including the `a == 0.0` skip of
    /// `matmul_tn`, which mirrors the paper path's "skip steps the filter
    /// zeroed" rule — is bitwise-identical to the scalar loops this replaced.
    /// Both the per-user path ([`CauserModel::score_all`]) and the batched
    /// serving engine call this same function, so their scores cannot drift.
    pub fn score_candidates_with_run(
        &self,
        ic: &InferenceCache,
        run: &HistoryRun,
        cand: &[usize],
        cand_assign: &Matrix,
        bufs: &mut ScoreBufs,
        out: &mut [f64],
    ) {
        debug_assert_eq!(cand.len(), out.len());
        debug_assert_eq!(cand_assign.shape(), (cand.len(), self.config.k));
        let e_out = self.params.value(self.item_out);
        let bias = self.params.value(self.item_bias);
        // B = S · W^c (T×K); Ŵ_{t,b} = B_t · ā_b.
        run.s_bags.matmul_into(&ic.wc, &mut bufs.bmat);
        bufs.bmat.matmul_nt_into(cand_assign, &mut bufs.what); // T×n
                                                               // vh_b = Σ_t Ŵ_{t,b} c_t — matmul_tn skips Ŵ == 0 entries exactly
                                                               // like the scalar loop did.
        bufs.what.matmul_tn_into(&run.c_mat, &mut bufs.vh); // n×d_e
        for (i, (&b, slot)) in cand.iter().zip(out.iter_mut()).enumerate() {
            // denom = 1e-8 + Σ_t Ŵ_t α_t, accumulated in step order starting
            // from the epsilon — kept scalar because folding it into a matmul
            // would reorder the sum.
            let mut denom = 1e-8;
            for (t, &a) in run.alpha.iter().enumerate() {
                let what = bufs.what.get(t, i);
                if what == 0.0 {
                    continue;
                }
                denom += what * a;
            }
            *slot = bias.get(b, 0)
                + e_out.row(b).iter().zip(bufs.vh.row(i)).map(|(&e, &x)| e * x).sum::<f64>()
                    / denom;
        }
    }

    /// Score every item in the catalog for one evaluation case. Returned
    /// scores are pre-sigmoid logits (monotone in probability).
    pub fn score_all(&self, ic: &InferenceCache, user: usize, history: &[Step]) -> Vec<f64> {
        let items: Vec<usize> = (0..self.config.num_items).collect();
        self.score_items(ic, user, history, &items)
    }

    /// Score an arbitrary candidate set (`out[i]` scores `items[i]`).
    /// Candidates are grouped by hard cluster, so the cost is one filtered
    /// RNN run per *distinct* cluster among `items` — scoring a single item
    /// runs one cluster, not `K`.
    pub fn score_items(
        &self,
        ic: &InferenceCache,
        user: usize,
        history: &[Step],
        items: &[usize],
    ) -> Vec<f64> {
        let hist = self.clamp_history(history);
        let mut scores = vec![0.0f64; items.len()];
        if hist.is_empty() {
            return scores;
        }

        if !self.config.variant.use_causal() {
            // Single unfiltered pattern, Ŵ ≡ 1, shared by all candidates.
            if let Some(run) = self.history_run(ic, user, &hist, None) {
                let vh = self.uniform_vh(&run);
                for (slot, &b) in scores.iter_mut().zip(items) {
                    *slot = self.score_one_with_vh(&vh, b);
                }
            }
            return scores;
        }

        // Group candidate *positions* by hard cluster: candidates of cluster
        // c share the filter mask `P[a, c] > ε`, so at most K RNN runs score
        // any candidate set.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.config.k];
        for (i, &b) in items.iter().enumerate() {
            groups[ic.hard_clusters[b]].push(i);
        }
        // Unfiltered fallback (Ŵ ≡ 1) for clusters whose filter empties the
        // history — computed lazily, shared by all such clusters.
        let mut fallback_vh: Option<Option<Vec<f64>>> = None;
        let mut bufs = ScoreBufs::new();
        let mut out = Vec::new();
        for (c, positions) in groups.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let cand: Vec<usize> = positions.iter().map(|&i| items[i]).collect();
            let Some(run) = self.history_run(ic, user, &hist, Some(c)) else {
                // All steps filtered: fall back to the unfiltered history
                // with Ŵ ≡ 1, as in training.
                let vh = fallback_vh
                    .get_or_insert_with(|| {
                        self.history_run(ic, user, &hist, None).map(|run| self.uniform_vh(&run))
                    })
                    .clone();
                if let Some(vh) = vh {
                    for (&i, &b) in positions.iter().zip(&cand) {
                        scores[i] = self.score_one_with_vh(&vh, b);
                    }
                }
                continue;
            };
            ic.rel.assignments.select_rows_into(&cand, &mut bufs.assign);
            out.clear();
            out.resize(cand.len(), 0.0);
            let assign = std::mem::take(&mut bufs.assign);
            self.score_candidates_with_run(ic, &run, &cand, &assign, &mut bufs, &mut out);
            bufs.assign = assign;
            for (&i, &s) in positions.iter().zip(out.iter()) {
                scores[i] = s;
            }
        }
        scores
    }

    /// Plain forward over a history with an optional hard-cluster filter.
    /// Returns the stacked per-step context (see [`HistoryRun`]), or `None`
    /// when the filter empties every step.
    pub fn history_run(
        &self,
        ic: &InferenceCache,
        user: usize,
        history: &[Step],
        filter_cluster: Option<usize>,
    ) -> Option<HistoryRun> {
        let cfg = &self.config;
        let kept: Vec<Vec<usize>> = history
            .iter()
            .map(|step| self.kept_step(ic, step, filter_cluster))
            .filter(|s: &Vec<usize>| !s.is_empty())
            .collect();
        if kept.is_empty() {
            return None;
        }
        let user_row = self.params.value(self.user_emb).select_rows(&[user]);
        let mut state = self.cell.init_plain_state(1);
        let mut h_rows: Vec<Matrix> = Vec::with_capacity(kept.len());
        let mut s = Matrix::zeros(kept.len(), cfg.k);
        for (t, bag) in kept.iter().enumerate() {
            let x = self.step_input(ic, bag, &user_row, s.row_mut(t));
            state = self.cell.step_plain(&self.params, &x, &state);
            h_rows.push(state.h.clone());
        }
        let h_stack = Matrix::vstack(&h_rows.iter().collect::<Vec<_>>());
        let alpha = self.attention_weights(&h_stack, &state);
        let mut c_mat = h_stack.matmul(self.params.value(self.v)); // T×d_e
        for (t, &a) in alpha.iter().enumerate() {
            for v in c_mat.row_mut(t) {
                *v *= a;
            }
        }
        Some(HistoryRun { c_mat, s_bags: s, alpha })
    }

    /// Filter one history step for a hard-cluster stream: keep the items `a`
    /// with `Ŵ_{a→c} > ε` (`None` keeps the step unfiltered). Shared by the
    /// batch path ([`CauserModel::history_run`]) and the incremental path
    /// ([`CauserModel::advance_stream`]) so the two can never disagree on
    /// which steps survive.
    fn kept_step(
        &self,
        ic: &InferenceCache,
        step: &[usize],
        filter_cluster: Option<usize>,
    ) -> Vec<usize> {
        match filter_cluster {
            Some(c) => {
                let eps = self.config.epsilon;
                step.iter().copied().filter(|&a| ic.rel.w_a_to_cluster(a, c) > eps).collect()
            }
            None => step.to_vec(),
        }
    }

    /// Build the RNN input row for one kept bag (summed encoder embeddings ∥
    /// summed free embeddings ∥ user row) while accumulating the bag's
    /// assignment rows into `s_row`. The per-item accumulation order is part
    /// of the bitwise contract between the batch and incremental encoders.
    fn step_input(
        &self,
        ic: &InferenceCache,
        bag: &[usize],
        user_row: &Matrix,
        s_row: &mut [f64],
    ) -> Matrix {
        let cfg = &self.config;
        let free = self.params.value(self.item_in);
        let mut x_item = Matrix::zeros(1, cfg.d2);
        let mut x_free = Matrix::zeros(1, cfg.item_in_dim);
        for &a in bag {
            for (o, &e) in x_item.row_mut(0).iter_mut().zip(ic.item_embs.row(a)) {
                *o += e;
            }
            for (o, &e) in x_free.row_mut(0).iter_mut().zip(free.row(a)) {
                *o += e;
            }
            for (o, &w) in s_row.iter_mut().zip(ic.rel.assignments.row(a)) {
                *o += w;
            }
        }
        Matrix::hstack(&[&x_item, &x_free, user_row])
    }

    /// Attention weights over a stacked forward, or the Ŵ≡1-style uniform
    /// weights for the `-att` variants. Shared by both encoder paths.
    fn attention_weights(&self, h_stack: &Matrix, state: &PlainState) -> Vec<f64> {
        if self.config.variant.use_attention() {
            self.attention.weights_plain(&self.params, h_stack, &state.h)
        } else {
            vec![1.0; h_stack.rows()]
        }
    }

    /// A fresh, empty incremental stream (zero RNN state, zero kept steps).
    pub fn new_stream(&self) -> StreamState {
        let cfg = &self.config;
        StreamState {
            state: self.cell.init_plain_state(1),
            h_stack: Matrix::zeros(0, cfg.hidden_dim),
            hv: Matrix::zeros(0, cfg.item_out_dim),
            run: HistoryRun {
                c_mat: Matrix::zeros(0, cfg.item_out_dim),
                s_bags: Matrix::zeros(0, cfg.k),
                alpha: Vec::new(),
            },
        }
    }

    /// Advance one incremental stream over `new_steps`: one `step_plain` per
    /// *kept* step, instead of re-encoding the whole history. After the call,
    /// `stream.run()` is exactly what [`CauserModel::history_run`] would
    /// return over the concatenation of every step the stream has ever
    /// consumed — bitwise on the scalar/sse2 kernel tiers (the serve
    /// equivalence suites assert this on trained weights), because both paths
    /// share [`CauserModel::kept_step`]/[`CauserModel::step_input`], the `h·V`
    /// projection is row-independent, and the attention re-weighting applies
    /// the same `weights_plain` to the same stacked hidden states.
    ///
    /// Steps emptied by the filter are skipped, preserving the Ŵ≡1 fallback
    /// semantics: a stream that never keeps a step reports `run() == None`,
    /// the same condition under which `history_run` returns `None`.
    pub fn advance_stream(
        &self,
        ic: &InferenceCache,
        user: usize,
        filter_cluster: Option<usize>,
        new_steps: &[Step],
        stream: &mut StreamState,
    ) {
        let mut user_row: Option<Matrix> = None;
        let mut appended = false;
        for step in new_steps {
            let bag = self.kept_step(ic, step, filter_cluster);
            if bag.is_empty() {
                continue;
            }
            let user_row = user_row
                .get_or_insert_with(|| self.params.value(self.user_emb).select_rows(&[user]));
            let mut s_row = vec![0.0; self.config.k];
            let x = self.step_input(ic, &bag, user_row, &mut s_row);
            stream.state = self.cell.step_plain(&self.params, &x, &stream.state);
            stream.h_stack.push_row(stream.state.h.row(0));
            let hv_row = stream.state.h.matmul(self.params.value(self.v));
            stream.hv.push_row(hv_row.row(0));
            stream.run.s_bags.push_row(&s_row);
            appended = true;
        }
        if !appended {
            return;
        }
        // Attention depends on the final hidden state, so the weights — and
        // the α-scaled context — are rebuilt over the whole stack. That is
        // the O(T) residue of an append; the O(T·K) encoder re-runs are gone.
        let alpha = self.attention_weights(&stream.h_stack, &stream.state);
        let mut c_mat = stream.hv.clone();
        for (t, &a) in alpha.iter().enumerate() {
            for v in c_mat.row_mut(t) {
                *v *= a;
            }
        }
        stream.run.c_mat = c_mat;
        stream.run.alpha = alpha;
    }

    /// Explanation scores of §V-E for a single-item-per-step history:
    /// `Ŵ·α` for the full model, `Ŵ` for Causer(-att), `α` for
    /// Causer(-causal). Returns one score per original history position
    /// (filtered-out positions score 0).
    pub fn explanation_scores(
        &self,
        ic: &InferenceCache,
        user: usize,
        history_items: &[usize],
        target: usize,
    ) -> Vec<f64> {
        let cfg = &self.config;
        let eps = cfg.epsilon;
        let n = history_items.len();
        if n == 0 {
            return Vec::new();
        }
        // Soft per-item relation toward the concrete target (exact eq. 9).
        let w: Vec<f64> = history_items.iter().map(|&a| ic.rel.w_ab(a, target)).collect();
        let mut causal_scores = cfg.variant.use_causal();
        let mut kept: Vec<usize> =
            if causal_scores { (0..n).filter(|&t| w[t] > eps).collect() } else { (0..n).collect() };
        if kept.is_empty() {
            // Same fallback as scoring: with everything filtered, degrade to
            // the attention-only explanation over the full history.
            kept = (0..n).collect();
            causal_scores = false;
        }
        let user_row = self.params.value(self.user_emb).select_rows(&[user]);
        let mut state = self.cell.init_plain_state(1);
        let mut h_rows = Vec::with_capacity(kept.len());
        let free = self.params.value(self.item_in);
        for &t in &kept {
            let x_item = ic.item_embs.select_rows(&[history_items[t]]);
            let x_free = free.select_rows(&[history_items[t]]);
            let x = Matrix::hstack(&[&x_item, &x_free, &user_row]);
            state = self.cell.step_plain(&self.params, &x, &state);
            h_rows.push(state.h.clone());
        }
        let h_stack = Matrix::vstack(&h_rows.iter().collect::<Vec<_>>());
        let alpha: Vec<f64> = if cfg.variant.use_attention() {
            self.attention.weights_plain(&self.params, &h_stack, &state.h)
        } else {
            vec![1.0; kept.len()]
        };
        let mut scores = vec![0.0f64; n];
        for (idx, &t) in kept.iter().enumerate() {
            let causal_part = if causal_scores { w[t] } else { 1.0 };
            scores[t] = causal_part * alpha[idx];
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::GradStore;

    fn toy_model(variant: CauserVariant, rnn: RnnKind) -> CauserModel {
        let mut cfg = CauserConfig::new(4, 10, 6);
        cfg.variant = variant;
        cfg.rnn = rnn;
        cfg.k = 3;
        cfg.d1 = 8;
        cfg.d2 = 6;
        cfg.user_dim = 4;
        cfg.hidden_dim = 8;
        cfg.item_out_dim = 6;
        let mut rng = StdRng::seed_from_u64(99);
        let features = init::uniform(&mut rng, 10, 6, 1.0);
        CauserModel::new(cfg, features, 5)
    }

    fn toy_history() -> Vec<Step> {
        vec![vec![0], vec![1, 2], vec![3]]
    }

    #[test]
    fn training_graph_builds_and_backprops() {
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            let model = toy_model(CauserVariant::Full, rnn);
            let cache = model.relation_cache();
            let mut g = Graph::new();
            let shared = model.shared_nodes(&mut g);
            let steps = toy_history();
            let logits = model.sequence_logits(
                &mut g,
                &shared,
                &cache,
                1,
                &steps,
                &[1, 2],
                &[vec![5, 6], vec![7]],
            );
            assert_eq!(logits.len(), 2 + 2 + 1 + 1); // step1: 2 pos? no: step1 has 2 items? steps[1] = [1,2]
            let bce = model.bce_from_logits(&mut g, &logits).unwrap();
            let reg = model.regularizer(&mut g, &shared, 0.1, 1.0, 1.0);
            let loss = g.add(bce, reg);
            let mut gs = GradStore::new(&model.params);
            g.backward(loss, &mut gs);
            // Gradients must reach the causal graph and the cluster logits.
            assert!(gs.get(model.causal.wc).is_some());
        }
    }

    #[test]
    fn score_all_returns_full_catalog() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let scores = model.score_all(&ic, 2, &toy_history());
            assert_eq!(scores.len(), 10);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn score_items_matches_score_all_bitwise() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let all = model.score_all(&ic, 2, &toy_history());
            let subset = [9usize, 0, 4, 4];
            let s = model.score_items(&ic, 2, &toy_history(), &subset);
            for (i, &b) in subset.iter().enumerate() {
                assert_eq!(s[i].to_bits(), all[b].to_bits(), "item {b} ({variant:?})");
            }
        }
    }

    #[test]
    fn empty_history_scores_uniform() {
        let model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let ic = model.inference_cache();
        let scores = model.score_all(&ic, 0, &[]);
        assert!(scores.iter().all(|&s| s == 0.0), "uniform ⇒ all-equal logits");
    }

    #[test]
    fn explanation_scores_have_history_length() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let s = model.explanation_scores(&ic, 1, &[0, 3, 7], 2);
            assert_eq!(s.len(), 3);
            assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn filter_respects_epsilon() {
        let mut model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let cache = model.relation_cache();
        let history = toy_history();
        // Impossible threshold filters everything.
        model.config.epsilon = f64::INFINITY;
        let kept = model.filter_history(&cache, &history, 4);
        assert!(kept.iter().all(|s| s.is_empty()));
        // Permissive threshold keeps everything with non-negative relations.
        model.config.epsilon = f64::NEG_INFINITY;
        let kept = model.filter_history(&cache, &history, 4);
        assert_eq!(kept, history);
    }

    #[test]
    fn nocausal_variant_ignores_filtering() {
        let model = toy_model(CauserVariant::NoCausal, RnnKind::Gru);
        let cache = model.relation_cache();
        let history = toy_history();
        assert_eq!(model.filter_history(&cache, &history, 0), history);
    }

    #[test]
    fn slow_update_params_cover_cluster_and_graph() {
        let model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let ids = model.slow_update_params();
        assert!(!ids.is_empty());
        for id in &ids {
            let name = model.params.name(*id);
            assert!(name.starts_with("cluster.") || name.starts_with("causal."));
        }
        // Wc itself must be included.
        assert!(ids.contains(&model.causal.wc));
    }

    #[test]
    fn parameter_count_is_sane() {
        let model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let n = model.num_parameters();
        assert!(n > 500 && n < 100_000, "{n}");
    }

    fn assert_run_eq(inc: &HistoryRun, full: &HistoryRun, ctx: &str) {
        assert_eq!(inc.alpha.len(), full.alpha.len(), "{ctx}: step count");
        for (a, b) in inc.alpha.iter().zip(&full.alpha) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: alpha");
        }
        for (a, b) in inc.c_mat.data().iter().zip(full.c_mat.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: c_mat");
        }
        for (a, b) in inc.s_bags.data().iter().zip(full.s_bags.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: s_bags");
        }
    }

    #[test]
    fn incremental_stream_matches_history_run_bitwise() {
        let history: Vec<Step> =
            vec![vec![0], vec![1, 2], vec![3], vec![4, 5, 6], vec![7], vec![8, 9]];
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            for variant in CauserVariant::ALL {
                let model = toy_model(variant, rnn);
                let ic = model.inference_cache();
                for filter in [None, Some(0), Some(1), Some(2)] {
                    let mut stream = model.new_stream();
                    for t in 0..history.len() {
                        model.advance_stream(&ic, 2, filter, &history[t..t + 1], &mut stream);
                        let full = model.history_run(&ic, 2, &history[..t + 1], filter);
                        let ctx = format!("{rnn:?}/{variant:?}/filter={filter:?}/t={t}");
                        match (stream.run(), full) {
                            (None, None) => {}
                            (Some(inc), Some(full)) => assert_run_eq(inc, &full, &ctx),
                            (inc, full) => panic!(
                                "{ctx}: warm/cold disagree on fallback \
                                 (inc={:?} full={:?})",
                                inc.is_some(),
                                full.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn advance_stream_batch_equals_one_at_a_time() {
        let history: Vec<Step> = vec![vec![0, 1], vec![2], vec![3, 4], vec![5], vec![6, 7]];
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            let model = toy_model(CauserVariant::Full, rnn);
            let ic = model.inference_cache();
            let mut one = model.new_stream();
            for step in &history {
                model.advance_stream(&ic, 1, Some(1), std::slice::from_ref(step), &mut one);
            }
            let mut batch = model.new_stream();
            model.advance_stream(&ic, 1, Some(1), &history, &mut batch);
            assert_eq!(one.steps(), batch.steps());
            if let (Some(a), Some(b)) = (one.run(), batch.run()) {
                assert_run_eq(a, b, "batch-vs-single");
            }
            // The RNN state itself (incl. the LSTM carry) must agree too.
            for (a, b) in one.state().h.data().iter().zip(batch.state().h.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "hidden state");
            }
            match (&one.state().c, &batch.state().c) {
                (None, None) => assert_eq!(rnn, RnnKind::Gru),
                (Some(a), Some(b)) => {
                    assert_eq!(rnn, RnnKind::Lstm);
                    for (x, y) in a.data().iter().zip(b.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "lstm carry");
                    }
                }
                _ => panic!("carry presence disagrees"),
            }
        }
    }

    #[test]
    fn filtered_out_stream_reports_no_run() {
        let mut model = toy_model(CauserVariant::Full, RnnKind::Gru);
        model.config.epsilon = f64::INFINITY; // nothing survives the filter
        let ic = model.inference_cache();
        let mut stream = model.new_stream();
        model.advance_stream(&ic, 0, Some(0), &toy_history(), &mut stream);
        assert_eq!(stream.steps(), 0);
        assert!(stream.run().is_none(), "empty filter must report the Ŵ≡1 fallback condition");
        assert!(stream.approx_bytes() >= 8, "state itself still counts toward the budget");
    }

    #[test]
    fn stream_bytes_grow_with_steps_and_cover_the_carry() {
        let model = toy_model(CauserVariant::Full, RnnKind::Lstm);
        let ic = model.inference_cache();
        let mut stream = model.new_stream();
        let empty = stream.approx_bytes();
        model.advance_stream(&ic, 3, None, &toy_history(), &mut stream);
        assert_eq!(stream.steps(), 3);
        assert!(stream.approx_bytes() > empty);
        // LSTM streams are strictly larger than GRU streams of the same
        // shape: the carry is resident and must be charged.
        let gru = toy_model(CauserVariant::Full, RnnKind::Gru);
        let gic = gru.inference_cache();
        let mut gstream = gru.new_stream();
        gru.advance_stream(&gic, 3, None, &toy_history(), &mut gstream);
        assert!(stream.approx_bytes() > gstream.approx_bytes());
    }
}
