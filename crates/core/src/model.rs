//! The Causer model (§III): a sequential recommender whose history is
//! causally filtered by a learned cluster-level causal graph.
//!
//! Implements eq. (10):
//!
//! ```text
//! h_{t+1} = g(h_t, v⃗_t ⊙ 1(W_{·b} > ε), u)
//! f(b | H, u) = σ( e_b^T ( V Σ_t Ŵ_{v⃗_t b} α_t h_t ) )
//! ```
//!
//! with `W` induced from the cluster graph by eq. (9). Training uses the
//! autodiff substrate; inference and explanation use plain-matrix forwards
//! with candidate items **grouped by their hard cluster** so the whole
//! catalog is scored with at most `K` filtered RNN runs (this is why the
//! paper's inference overhead is only ~1.16× the base model — the η→0 hard
//! limit of footnote 5).

use crate::attention::{AttnScratch, BilinearAttention};
use crate::causal_graph::{ClusterCausalGraph, ItemRelationCache};
use crate::clustering::ClusterModule;
use crate::rnn::{Cell, PlainState, RnnKind, StepScratch};
use crate::variants::CauserVariant;
use causer_data::Step;
use causer_tensor::{init, simd, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of a Causer model (Table III ranges; defaults are the
/// tuned values used by the experiment harness).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CauserConfig {
    pub rnn: RnnKind,
    pub variant: CauserVariant,
    pub num_users: usize,
    pub num_items: usize,
    pub feature_dim: usize,
    /// Encoder hidden width (eq. 6).
    pub d1: usize,
    /// Item embedding size `d2` (encoder output, part of the RNN input).
    pub d2: usize,
    /// Free (identity) item input embedding size, concatenated with the
    /// encoder output — the paper's `Θ_e` item embeddings.
    pub item_in_dim: usize,
    pub user_dim: usize,
    pub hidden_dim: usize,
    /// Output item embedding size `d_e`.
    pub item_out_dim: usize,
    /// Number of latent clusters `K`.
    pub k: usize,
    /// Assignment softmax temperature η.
    pub eta: f64,
    /// Causal filter threshold ε.
    pub epsilon: f64,
    /// L1 sparsity coefficient λ on `W^c`.
    pub lambda: f64,
    /// History window fed to the RNN.
    pub max_history: usize,
}

impl CauserConfig {
    /// Reasonable defaults for the scaled experiments.
    pub fn new(num_users: usize, num_items: usize, feature_dim: usize) -> Self {
        CauserConfig {
            rnn: RnnKind::Gru,
            variant: CauserVariant::Full,
            num_users,
            num_items,
            feature_dim,
            d1: 32,
            d2: 24,
            item_in_dim: 16,
            user_dim: 8,
            hidden_dim: 32,
            item_out_dim: 24,
            k: 8,
            eta: 0.02,
            epsilon: 0.1,
            lambda: 1e-4,
            max_history: 12,
        }
    }
}

/// The Causer model: parameters plus the raw item features it encodes.
pub struct CauserModel {
    pub config: CauserConfig,
    pub params: ParamSet,
    pub cluster: ClusterModule,
    pub causal: ClusterCausalGraph,
    pub cell: Cell,
    pub attention: BilinearAttention,
    /// `V ∈ R^{d_h × d_e}` adapting hidden states to the embedding space.
    v: ParamId,
    /// Independent output item embeddings `e_b` (`|V| × d_e`).
    item_out: ParamId,
    /// Free item *input* embeddings (`|V| × item_in_dim`).
    item_in: ParamId,
    /// Learnable per-item output bias (captures popularity).
    item_bias: ParamId,
    /// Intercept of the structure-fitting regression (`1 × K`): absorbs
    /// cluster base rates so `W^c` captures *transitions*, not popularity.
    struct_bias: ParamId,
    /// User embeddings (`|U| × user_dim`).
    user_emb: ParamId,
    /// Constant raw item features (`|V| × feature_dim`).
    pub features: Matrix,
}

/// Shared per-graph nodes reused by every sequence in a batch.
pub struct SharedNodes {
    pub item_embs: NodeId,
    pub item_in: NodeId,
    pub assignments: NodeId,
    pub wc: NodeId,
    pub item_out: NodeId,
    pub item_bias: NodeId,
    pub v: NodeId,
    pub user_emb: NodeId,
}

/// One scored candidate: its logit node and binary target.
pub struct CandidateLogit {
    pub logit: NodeId,
    pub target: f64,
}

/// Plain-matrix state reused across inference calls.
pub struct InferenceCache {
    pub item_embs: Matrix,
    pub rel: ItemRelationCache,
    pub hard_clusters: Vec<usize>,
    pub wc: Matrix,
}

/// A prepared plain-matrix forward over one (possibly causally filtered)
/// history: `c_mat` holds `C_t = α_t (h_t V)` stacked `T×d_e`, `s_bags` the
/// summed assignment rows of the kept items per step (`T×K`), and `alpha`
/// the raw attention weights. Produced by [`CauserModel::history_run`] and
/// consumed by the candidate-scoring helpers shared between the per-user
/// path and the batched serving engine.
#[derive(Clone)]
pub struct HistoryRun {
    pub c_mat: Matrix,
    pub s_bags: Matrix,
    pub alpha: Vec<f64>,
}

/// Incrementally maintained encoder state for one (possibly causally
/// filtered) stream of a user's history — the unit the serving-side
/// `UserStateStore` persists per user per cluster.
///
/// Where [`CauserModel::history_run`] re-encodes the whole history from
/// scratch, a `StreamState` is advanced by [`CauserModel::advance_stream`]
/// with one `step_plain` per *new* kept step: the RNN state (hidden plus the
/// LSTM carry when present), the stacked hidden states, and the unscaled
/// context rows all grow append-only. Only the attention weights and the
/// `α`-scaled context matrix are rebuilt after an append, because attention
/// re-weights the entire stack whenever the summary state moves.
#[derive(Clone)]
pub struct StreamState {
    /// RNN state after the last kept step (`h`, and the carry `c` for LSTM).
    state: PlainState,
    /// Stacked hidden states of every kept step (`T×d_h`); attention needs
    /// the whole stack each time the stream advances.
    h_stack: Matrix,
    /// `h_stack · V` (`T×d_e`), unscaled by attention — one new row per kept
    /// step, never a full re-multiply.
    hv: Matrix,
    /// The prepared run consumed by the scoring helpers; identical to what
    /// [`CauserModel::history_run`] would return over the consumed steps.
    run: HistoryRun,
    /// T-collapsed attention accumulators (see [`StreamFold`]); refreshed
    /// together with `run` by [`CauserModel::refresh_stream`] /
    /// [`CauserModel::ensure_fold`].
    fold: StreamFold,
}

/// T-collapsed attention accumulators for one stream: everything the
/// candidate scorer needs, with the step dimension summed out.
///
/// With `C_t = α_t (h_t V)` (the rows of `HistoryRun::c_mat`) and `s_t` the
/// assignment bags, the per-candidate context of eq. (10) factors as
///
/// ```text
/// vh_b  = ā_b · W^cᵀ · D      with  D  = Σ_t s_tᵀ C_t   (K×d_e)
/// denom = 1e-8 + ā_b · W^cᵀ · sa   with  sa = Σ_t α_t s_t    (K)
/// ```
///
/// so a warm request scores `n` candidates in `O(n·K·d_e)` regardless of the
/// stream length. The fold re-associates eq. (10)'s step-ordered sums, so
/// fold-scored candidates are tolerance-gated (≤1e-12) against the golden
/// [`CauserModel::score_candidates_with_run`]; `usum`/`alpha_sum` keep step
/// order and leave the Ŵ≡1 fallback bitwise. Every refresh recomputes the
/// fold exactly from the append-only `hv` stack (a re-fold per re-weight),
/// so drift never accumulates across appends.
#[derive(Clone, Default)]
pub struct StreamFold {
    /// `Σ_t s_tᵀ C_t` (`K×d_e`).
    d: Matrix,
    /// `Σ_t α_t s_t` (`K`).
    sa: Vec<f64>,
    /// `Σ_t C_t` in step order (`d_e`) — the Ŵ≡1 fallback numerator.
    usum: Vec<f64>,
    /// `Σ_t α_t` in step order — the Ŵ≡1 fallback denominator.
    alpha_sum: f64,
    /// Steps covered by `usum`/`alpha_sum` (the re-weight freshness marker).
    weight_steps: usize,
    /// Steps covered by the materialized `c_mat` rows. The re-weight leaves
    /// `c_mat` stale on purpose: the Ŵ≡1 fallback needs only `usum`, so the
    /// unfiltered stream never pays the `T×d_e` rescale; the rows are
    /// materialized by [`CauserModel::ensure_fold`] / [`CauserModel::ensure_run`]
    /// for consumers that read them.
    cmat_steps: usize,
    /// Steps covered by `d`/`sa` (the causal-fold freshness marker).
    causal_steps: usize,
}

impl StreamState {
    /// Kept (non-filtered, non-empty) steps consumed so far.
    pub fn steps(&self) -> usize {
        self.h_stack.rows()
    }

    /// The prepared run, or `None` while no step survived the filter — the
    /// exact condition under which [`CauserModel::history_run`] returns
    /// `None` and scoring falls back to the unfiltered Ŵ≡1 path. Requires
    /// the `α`-scaled context rows to be materialized
    /// ([`CauserModel::ensure_fold`] or [`CauserModel::ensure_run`] after
    /// the re-weight; the eager [`CauserModel::advance_stream`] does both).
    pub fn run(&self) -> Option<&HistoryRun> {
        if self.steps() > 0 {
            debug_assert!(self.run_is_fresh(), "stale run: refresh_stream + ensure_run first");
            Some(&self.run)
        } else {
            None
        }
    }

    /// Whether `run()`'s view (weights **and** materialized context rows)
    /// covers every appended step.
    pub fn run_is_fresh(&self) -> bool {
        self.weights_are_fresh() && self.fold.cmat_steps == self.steps()
    }

    /// The T-collapsed accumulators, or `None` while no step survived the
    /// filter (same fallback condition as [`StreamState::run`]). Requires a
    /// fresh fold — callers on the deferred path must run
    /// [`CauserModel::refresh_stream`] + [`CauserModel::ensure_fold`] first.
    pub fn fold(&self) -> Option<&StreamFold> {
        if self.steps() > 0 {
            debug_assert!(self.fold_is_fresh(), "stale fold: refresh_stream + ensure_fold first");
            Some(&self.fold)
        } else {
            None
        }
    }

    /// The fold restricted to its Ŵ≡1 half (`usum`/`alpha_sum`), valid after
    /// [`CauserModel::refresh_stream`] alone — the causal collapse is not
    /// required. This is what the unfiltered fallback stream exposes.
    pub fn weights_fold(&self) -> Option<&StreamFold> {
        if self.steps() > 0 {
            debug_assert!(self.weights_are_fresh(), "stale weights: refresh_stream first");
            Some(&self.fold)
        } else {
            None
        }
    }

    /// Whether the re-weight accumulators cover every appended step.
    pub fn weights_are_fresh(&self) -> bool {
        self.fold.weight_steps == self.steps()
    }

    /// Whether the causal fold covers every appended step.
    pub fn fold_is_fresh(&self) -> bool {
        self.weights_are_fresh() && self.fold.causal_steps == self.steps()
    }

    /// The RNN state after the last kept step (exposes the LSTM carry).
    pub fn state(&self) -> &PlainState {
        &self.state
    }

    /// Reserve capacity for `additional` more kept steps in every growable
    /// buffer, so subsequent appends within that headroom perform no heap
    /// allocation (the warm steady-state contract the allocation gate
    /// enforces).
    pub fn reserve_steps(&mut self, additional: usize) {
        self.h_stack.reserve_rows(additional);
        self.hv.reserve_rows(additional);
        self.run.c_mat.reserve_rows(additional);
        self.run.s_bags.reserve_rows(additional);
        self.run.alpha.reserve(additional);
    }

    /// Approximate resident size in bytes — every matrix and vector this
    /// stream keeps alive, the quantity the serving state store charges
    /// against its memory budget.
    pub fn approx_bytes(&self) -> usize {
        8 * (self.h_stack.len()
            + self.hv.len()
            + self.run.c_mat.len()
            + self.run.s_bags.len()
            + self.run.alpha.len()
            + self.fold.d.len()
            + self.fold.sa.len()
            + self.fold.usum.len()
            + self.state.num_scalars())
    }
}

/// Reusable scratch for the incremental encoder
/// ([`CauserModel::advance_stream_with`] / [`CauserModel::refresh_stream`]):
/// the per-step RNN input row, bag/assignment staging, and the RNN and
/// attention scratch. One per scoring worker — with it, a warm append touches
/// no allocator.
#[derive(Default)]
pub struct EncodeScratch {
    /// Gathered user embedding row (`1×d_u`).
    user_row: Matrix,
    /// Assembled RNN input row (`1×(d2+item_in+d_u)`).
    x: Matrix,
    /// Assignment-bag accumulator row (`K`).
    s_row: Vec<f64>,
    /// Filtered item bag of the step under construction.
    bag: Vec<usize>,
    /// Staging row for the `h·V` projection (`1×d_e`).
    hv_row: Matrix,
    /// RNN step scratch.
    step: StepScratch,
    /// Attention re-weight scratch.
    attn: AttnScratch,
}

/// The request-scoped scratch pool shared by every scoring helper
/// ([`CauserModel::score_candidates_with_run`],
/// [`CauserModel::score_candidates_with_fold`],
/// [`CauserModel::score_items_with`]). One pool per scoring thread; every
/// buffer is cleared in place and reused across requests, which is what
/// keeps the serving warm path allocation-free in steady state (the
/// allocation gate counts on it).
#[derive(Default)]
pub struct ScoreBufs {
    /// `S · W^c` (`T×K`).
    bmat: Matrix,
    /// `Ŵ` — causal effects per (step, candidate) (`T×n`).
    what: Matrix,
    /// Per-candidate context rows `Ŵᵀ C` (`n×d_e`).
    vh: Matrix,
    /// Gathered assignment rows of the candidate set (`n×K`).
    assign: Matrix,
    /// `W^cᵀ · D` — the fold's collapsed context map (`K×d_e`).
    gmat: Matrix,
    /// `W^cᵀ · sa` — the fold's collapsed denominators (`K`).
    dw: Vec<f64>,
    /// Candidate positions grouped by hard cluster (`K` inner vecs, cleared
    /// in place — never rebuilt).
    groups: Vec<Vec<usize>>,
    /// Candidate ids of the group being scored.
    cand: Vec<usize>,
    /// Scores of the group being scored (pub so the serving tier can
    /// take/restore it around `score_candidates_with_*` calls).
    pub out: Vec<f64>,
    /// The lazily computed Ŵ≡1 fallback context row (pub for the serving
    /// tier's shared-fallback scoring).
    pub fallback_vh: Vec<f64>,
}

impl ScoreBufs {
    pub fn new() -> Self {
        ScoreBufs::default()
    }
}

impl CauserModel {
    pub fn new(config: CauserConfig, features: Matrix, seed: u64) -> Self {
        assert_eq!(features.rows(), config.num_items, "feature rows must match num_items");
        assert_eq!(features.cols(), config.feature_dim, "feature dim mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let cluster = ClusterModule::new(
            &mut ps,
            "cluster",
            config.num_items,
            config.feature_dim,
            config.d1,
            config.d2,
            config.k,
            config.eta,
            &mut rng,
        );
        let causal = ClusterCausalGraph::new(&mut ps, "causal", config.k, &mut rng);
        let cell = Cell::new(
            config.rnn,
            &mut ps,
            "rnn",
            config.d2 + config.item_in_dim + config.user_dim,
            config.hidden_dim,
            &mut rng,
        );
        let attention = BilinearAttention::new(&mut ps, "att", config.hidden_dim, &mut rng);
        let v = ps.add("V", init::xavier(&mut rng, config.hidden_dim, config.item_out_dim));
        let item_out =
            ps.add("item_out", init::normal(&mut rng, config.num_items, config.item_out_dim, 0.1));
        let item_in =
            ps.add("item_in", init::normal(&mut rng, config.num_items, config.item_in_dim, 0.1));
        let item_bias = ps.add("item_bias", Matrix::zeros(config.num_items, 1));
        let struct_bias = ps.add("struct_bias", Matrix::zeros(1, config.k));
        let user_emb =
            ps.add("user_emb", init::normal(&mut rng, config.num_users, config.user_dim, 0.1));
        CauserModel {
            config,
            params: ps,
            cluster,
            causal,
            cell,
            attention,
            v,
            item_in,
            item_out,
            item_bias,
            struct_bias,
            user_emb,
            features,
        }
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// The output item embedding matrix `E_out` (`|V| × d_e`).
    pub fn item_out_matrix(&self) -> &Matrix {
        self.params.value(self.item_out)
    }

    /// The per-item output bias column (`|V| × 1`).
    pub fn item_bias_matrix(&self) -> &Matrix {
        self.params.value(self.item_bias)
    }

    /// Parameter ids of `Θ_a ∪ {W^c}` — frozen in the "slow update"
    /// efficiency mode of §III-C.
    pub fn slow_update_params(&self) -> Vec<ParamId> {
        let mut ids: Vec<ParamId> = self
            .params
            .iter()
            .filter(|(_, name, _)| name.starts_with("cluster.") || name.starts_with("causal."))
            .map(|(id, _, _)| id)
            .collect();
        ids.dedup();
        ids
    }

    /// Start-of-epoch item relation cache (Algorithm 1, line 7).
    pub fn relation_cache(&self) -> ItemRelationCache {
        let assign = self.cluster.assignments_plain(&self.params);
        let wc = self.causal.value(&self.params);
        ItemRelationCache::build(assign, &wc)
    }

    /// Plain-matrix caches for inference.
    pub fn inference_cache(&self) -> InferenceCache {
        let item_embs = self.cluster.encode_plain(&self.params, &self.features);
        let rel = self.relation_cache();
        let hard_clusters = self.cluster.hard_clusters(&self.params);
        let wc = self.causal.value(&self.params);
        InferenceCache { item_embs, rel, hard_clusters, wc }
    }

    /// The model-level serving cache (cluster grouping, gathered assignment
    /// rows, total causal effects) for a given inference cache.
    pub fn cluster_effect_cache(
        &self,
        ic: &InferenceCache,
    ) -> crate::causal_graph::ClusterEffectCache {
        crate::causal_graph::ClusterEffectCache::build(&ic.rel, &ic.hard_clusters, &ic.wc)
    }

    /// Register the per-graph shared nodes.
    pub fn shared_nodes(&self, g: &mut Graph) -> SharedNodes {
        let features = g.constant(self.features.clone());
        let item_embs = self.cluster.encode(g, &self.params, features);
        let assignments = self.cluster.assignments(g, &self.params);
        let wc = self.causal.node(g, &self.params);
        let item_in = g.param(&self.params, self.item_in);
        let item_out = g.param(&self.params, self.item_out);
        let item_bias = g.param(&self.params, self.item_bias);
        let v = g.param(&self.params, self.v);
        let user_emb = g.param(&self.params, self.user_emb);
        SharedNodes { item_embs, item_in, assignments, wc, item_out, item_bias, v, user_emb }
    }

    /// Causal filter for candidate `b`: per history step, the items `a`
    /// with `W_ab > ε` (eq. 10's `v⃗_t ⊙ 1(W_{·b} > ε)`).
    pub fn filter_history(
        &self,
        cache: &ItemRelationCache,
        history: &[Step],
        b: usize,
    ) -> Vec<Vec<usize>> {
        if !self.config.variant.use_causal() {
            return history.to_vec();
        }
        history
            .iter()
            .map(|step| {
                step.iter().copied().filter(|&a| cache.w_ab(a, b) > self.config.epsilon).collect()
            })
            .collect()
    }

    /// Run the RNN over the non-empty filtered steps of a history; returns
    /// `(stacked hidden states T×d_h, attention α T×1, cluster bags T×K)`
    /// or `None` when every step was filtered out.
    fn run_filtered_history(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        user: usize,
        kept: &[Vec<usize>],
    ) -> Option<(NodeId, NodeId, NodeId)> {
        let bags: Vec<Vec<usize>> = kept.iter().filter(|s| !s.is_empty()).cloned().collect();
        if bags.is_empty() {
            return None;
        }
        let user_row = g.select_rows(shared.user_emb, &[user]);
        let mut state = self.cell.init_state(g, 1);
        let mut hs = Vec::with_capacity(bags.len());
        for bag in &bags {
            let x_enc = g.embed_bag(shared.item_embs, std::slice::from_ref(bag), false);
            let x_free = g.embed_bag(shared.item_in, std::slice::from_ref(bag), false);
            let x_items = g.concat_cols(x_enc, x_free);
            let x = g.concat_cols(x_items, user_row);
            state = self.cell.step(g, &self.params, x, &state);
            hs.push(state.h);
        }
        let h_stack = g.vstack(&hs);
        let alpha = if self.config.variant.use_attention() {
            self.attention.weights(g, &self.params, h_stack, state.h)
        } else {
            g.constant(Matrix::ones(bags.len(), 1))
        };
        let s_bags = g.embed_bag(shared.assignments, &bags, false);
        Some((h_stack, alpha, s_bags))
    }

    /// Score one candidate against a prepared history run. `what_const`
    /// replaces the causal effect Ŵ with a constant: `Some(1.0)` for the
    /// `-causal` ablation, `Some(ε)` for the empty-filter fallback (ε keeps
    /// the fallback's logit amplitude commensurate with the filtered path,
    /// whose Ŵ values hover just above ε).
    fn candidate_logit(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        run: &(NodeId, NodeId, NodeId),
        b: usize,
        what_const: Option<f64>,
    ) -> NodeId {
        let (h_stack, alpha, s_bags) = *run;
        let what = match what_const {
            None => {
                let b_assign = g.select_rows(shared.assignments, &[b]); // 1×K
                let wcb = g.matmul_nt(shared.wc, b_assign); // K×1
                g.matmul(s_bags, wcb) // T×1: Ŵ_{v⃗_t b}
            }
            Some(w) => {
                let (t, _) = g.shape(alpha);
                g.constant(Matrix::full(t, 1, w))
            }
        };
        let w = g.mul(what, alpha); // T×1
                                    // Normalize Ŵ·α to a convex combination: raw Ŵ magnitudes differ
                                    // across candidates (and vs. the Ŵ≡const fallback), which would make
                                    // the context term's *scale* — not its content — drive cross-
                                    // candidate ranking. Normalizing preserves which steps each
                                    // candidate attends to while making scores comparable.
        let wsum = g.sum_all(w);
        let wsum = g.add_scalar(wsum, 1e-8);
        let w = g.div_scalar(w, wsum);
        let weighted = g.matmul_tn(w, h_stack); // 1×d_h
        let vh = g.matmul(weighted, shared.v); // 1×d_e
        let e_b = g.select_rows(shared.item_out, &[b]); // 1×d_e
        let dot = g.dot_rows(vh, e_b); // 1×1
        let bias = g.select_rows(shared.item_bias, &[b]);
        g.add(dot, bias)
    }

    /// Build the BCE logit terms for one training sequence: for each step
    /// `j ≥ 1` predict its items from the (causally filtered) prefix, with
    /// `negatives[j]` as sampled negatives. Candidates sharing a filter
    /// pattern share one RNN run.
    #[allow(clippy::too_many_arguments)]
    pub fn sequence_logits(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        cache: &ItemRelationCache,
        user: usize,
        steps: &[Step],
        target_positions: &[usize],
        negatives: &[Vec<usize>],
    ) -> Vec<CandidateLogit> {
        let mut out = Vec::new();
        for (pos_idx, &j) in target_positions.iter().enumerate() {
            debug_assert!(j >= 1 && j < steps.len());
            let start = j.saturating_sub(self.config.max_history);
            let history = &steps[start..j];
            let mut candidates: Vec<(usize, f64)> = steps[j].iter().map(|&b| (b, 1.0)).collect();
            candidates.extend(negatives[pos_idx].iter().map(|&b| (b, 0.0)));

            // Group candidates by filter pattern: same kept items => same RNN.
            type Group = (Vec<Vec<usize>>, Vec<(usize, f64)>);
            let mut groups: Vec<Group> = Vec::new();
            for (b, target) in candidates {
                let kept = self.filter_history(cache, history, b);
                match groups.iter_mut().find(|(k, _)| *k == kept) {
                    Some((_, members)) => members.push((b, target)),
                    None => groups.push((kept, vec![(b, target)])),
                }
            }
            // The unfiltered run is shared by every candidate whose filter
            // empties the history (the Ŵ≡1 fallback) — built lazily.
            let mut unfiltered_run = None;
            for (kept, members) in groups {
                match self.run_filtered_history(g, shared, user, &kept) {
                    Some(run) => {
                        let what_const =
                            if self.config.variant.use_causal() { None } else { Some(1.0) };
                        for (b, target) in members {
                            let logit = self.candidate_logit(g, shared, &run, b, what_const);
                            out.push(CandidateLogit { logit, target });
                        }
                    }
                    None => {
                        // Every step was filtered out. The paper only defines
                        // skipping *steps*; for a fully-empty history we fall
                        // back to the unfiltered history with Ŵ ≡ 1 (the
                        // "-causal" path), which keeps root-cluster items
                        // recommendable instead of degenerating to σ(0).
                        if unfiltered_run.is_none() {
                            unfiltered_run = self.run_filtered_history(g, shared, user, history);
                        }
                        match &unfiltered_run {
                            Some(run) => {
                                for (b, target) in members {
                                    // Ŵ ≡ 1: normalization makes the constant
                                    // cancel, leaving pure attention weights.
                                    let logit = self.candidate_logit(g, shared, run, b, Some(1.0));
                                    out.push(CandidateLogit { logit, target });
                                }
                            }
                            None => {
                                // History itself is empty: uniform (Remark 2).
                                for (_, target) in members {
                                    let logit = g.constant(Matrix::scalar(0.0));
                                    out.push(CandidateLogit { logit, target });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Combine candidate logits into the mean BCE loss of eq. (11).
    pub fn bce_from_logits(&self, g: &mut Graph, logits: &[CandidateLogit]) -> Option<NodeId> {
        if logits.is_empty() {
            return None;
        }
        let nodes: Vec<NodeId> = logits.iter().map(|c| c.logit).collect();
        let stacked = g.vstack(&nodes);
        let targets = Matrix::from_vec(logits.len(), 1, logits.iter().map(|c| c.target).collect());
        Some(g.bce_with_logits(stacked, &targets))
    }

    /// Node for the structure-regression intercept (used by the training
    /// loop's dedicated structure pass).
    pub fn struct_bias_node(&self, g: &mut Graph) -> NodeId {
        g.param(&self.params, self.struct_bias)
    }

    /// Parameter id of the structure-regression intercept.
    pub fn struct_bias_id(&self) -> ParamId {
        self.struct_bias
    }

    /// NOTEARS-style structure-fitting term on one behaviour sequence: the
    /// cluster-indicator vector of each step is regressed on a
    /// recency-discounted sum of its history's cluster vectors through
    /// `W^c` — eq. (3)'s `||x_j − x^T W_{·j}||²` applied at the cluster
    /// level to sequential data. This is what ties `W^c` to the *direction*
    /// of behaviour transitions (parents precede children); the BCE path
    /// alone is sign-degenerate in `Ŵ` because `e_b^T V h_t` can absorb any
    /// rescaling.
    pub fn structure_fit_loss(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        steps: &[Step],
    ) -> Option<NodeId> {
        if steps.len() < 2 || !self.config.variant.use_causal() {
            return None;
        }
        let gamma = 0.7; // recency discount of the history context
        let s = g.embed_bag(shared.assignments, steps, false); // T × K
        let bias = g.param(&self.params, self.struct_bias); // 1 × K intercept
        let mut ctx = g.select_rows(s, &[0]); // 1 × K
        let mut total: Option<NodeId> = None;
        for t in 1..steps.len() {
            let trans = g.matmul(ctx, shared.wc); // 1 × K
            let pred = g.add(trans, bias);
            let target = g.select_rows(s, &[t]);
            let diff = g.sub(target, pred);
            let sq = g.mul(diff, diff);
            let loss_t = g.sum_all(sq);
            total = Some(match total {
                None => loss_t,
                Some(acc) => g.add(acc, loss_t),
            });
            let decayed = g.scale(ctx, gamma);
            ctx = g.add(decayed, target);
        }
        total.map(|t| g.scale(t, 1.0 / (steps.len() - 1) as f64))
    }

    /// The auxiliary losses of eq. (11): `λ||W^c||₁ + recon + cluster`
    /// plus the augmented-Lagrangian acyclicity terms `β₁ b + (β₂/2) b²`.
    pub fn regularizer(
        &self,
        g: &mut Graph,
        shared: &SharedNodes,
        beta1: f64,
        beta2: f64,
        aux_weight: f64,
    ) -> NodeId {
        let mut total = self.causal.l1_penalty(g, &self.params, self.config.lambda);
        if self.config.variant.use_cluster_loss() {
            let lc =
                self.cluster.clustering_loss(g, &self.params, shared.item_embs, shared.assignments);
            let lc = g.scale(lc, aux_weight);
            total = g.add(total, lc);
        }
        if self.config.variant.use_reconstruction_loss() {
            let lr =
                self.cluster.reconstruction_loss(g, &self.params, shared.item_embs, &self.features);
            let lr = g.scale(lr, aux_weight);
            total = g.add(total, lr);
        }
        let h = self.causal.acyclicity_node(g, &self.params);
        let lin = g.scale(h, beta1);
        let hsq = g.mul(h, h);
        let quad = g.scale(hsq, beta2 / 2.0);
        let total = g.add(total, lin);
        g.add(total, quad)
    }

    /// Clamp a history to the model's window. Borrows the tail slice —
    /// nothing is copied, so per-request clamping costs two integer ops.
    pub fn clamp_history<'a>(&self, history: &'a [Step]) -> &'a [Step] {
        &history[history.len().saturating_sub(self.config.max_history)..]
    }

    /// The shared Ŵ≡1 context row `vh = Σ_t α_t (h_t V) / Σ_t α_t`, used by
    /// the `-causal` variant (every candidate) and by the empty-filter
    /// fallback of the causal path.
    pub fn uniform_vh(&self, run: &HistoryRun) -> Vec<f64> {
        let denom: f64 = run.alpha.iter().sum::<f64>().max(1e-8);
        run.c_mat.sum_rows().row(0).iter().map(|&v| v / denom).collect()
    }

    /// [`CauserModel::uniform_vh`] from a stream's fold, into a reused
    /// buffer. `usum`/`alpha_sum` are accumulated in step order during
    /// [`CauserModel::refresh_stream`] — the same order as `sum_rows` /
    /// `alpha.iter().sum()` — so this is bitwise-equal to `uniform_vh` over
    /// the stream's run.
    pub fn uniform_vh_into(&self, fold: &StreamFold, out: &mut Vec<f64>) {
        let denom = fold.alpha_sum.max(1e-8);
        out.clear();
        out.extend(fold.usum.iter().map(|&v| v / denom));
    }

    /// Score one candidate against a shared context row.
    #[inline]
    pub fn score_one_with_vh(&self, vh: &[f64], b: usize) -> f64 {
        let e_out = self.params.value(self.item_out);
        let bias = self.params.value(self.item_bias);
        // The dispatched dot keeps this bitwise-aligned with the batched
        // `matmul_nt` fast path at every kernel tier (each `matmul_nt`
        // element runs the same dot sequence as `simd::dot`).
        bias.get(b, 0) + causer_tensor::simd::dot(vh, e_out.row(b))
    }

    /// Score a cluster group's candidates against one prepared history run.
    /// `cand_assign` holds the gathered assignment rows of `cand` (`n×K`);
    /// `out[i]` receives the score of `cand[i]`.
    ///
    /// The Ŵ matrix (`T×n`) and the per-candidate context rows (`n×d_e`) are
    /// computed with the blocked `matmul_nt`/`matmul_tn` kernels, whose
    /// per-element accumulation order — including the `a == 0.0` skip of
    /// `matmul_tn`, which mirrors the paper path's "skip steps the filter
    /// zeroed" rule — is bitwise-identical to the scalar loops this replaced.
    /// Both the per-user path ([`CauserModel::score_all`]) and the batched
    /// serving engine call this same function, so their scores cannot drift.
    pub fn score_candidates_with_run(
        &self,
        ic: &InferenceCache,
        run: &HistoryRun,
        cand: &[usize],
        cand_assign: &Matrix,
        bufs: &mut ScoreBufs,
        out: &mut [f64],
    ) {
        debug_assert_eq!(cand.len(), out.len());
        debug_assert_eq!(cand_assign.shape(), (cand.len(), self.config.k));
        let e_out = self.params.value(self.item_out);
        let bias = self.params.value(self.item_bias);
        // B = S · W^c (T×K); Ŵ_{t,b} = B_t · ā_b.
        run.s_bags.matmul_into(&ic.wc, &mut bufs.bmat);
        bufs.bmat.matmul_nt_into(cand_assign, &mut bufs.what); // T×n
                                                               // vh_b = Σ_t Ŵ_{t,b} c_t — matmul_tn skips Ŵ == 0 entries exactly
                                                               // like the scalar loop did.
        bufs.what.matmul_tn_into(&run.c_mat, &mut bufs.vh); // n×d_e
        for (i, (&b, slot)) in cand.iter().zip(out.iter_mut()).enumerate() {
            // denom = 1e-8 + Σ_t Ŵ_t α_t, accumulated in step order starting
            // from the epsilon — kept scalar because folding it into a matmul
            // would reorder the sum.
            let mut denom = 1e-8;
            for (t, &a) in run.alpha.iter().enumerate() {
                let what = bufs.what.get(t, i);
                if what == 0.0 {
                    continue;
                }
                denom += what * a;
            }
            *slot = bias.get(b, 0)
                + e_out.row(b).iter().zip(bufs.vh.row(i)).map(|(&e, &x)| e * x).sum::<f64>()
                    / denom;
        }
    }

    /// Score a cluster group's candidates against a stream's T-collapsed
    /// fold: `vh = Ā (W^cᵀ D)` and `denom_b = 1e-8 + ā_b (W^cᵀ sa)` —
    /// `O(n·K·d_e)` for `n` candidates, independent of the stream length.
    ///
    /// This re-associates eq. (10)'s step-ordered sums, so scores carry an
    /// ≤1e-12 tolerance against the golden
    /// [`CauserModel::score_candidates_with_run`] (asserted by the serve
    /// equivalence suites and in-bench before timing); ranking consumers are
    /// insensitive to that at the scale of trained logits.
    pub fn score_candidates_with_fold(
        &self,
        ic: &InferenceCache,
        fold: &StreamFold,
        cand: &[usize],
        cand_assign: &Matrix,
        bufs: &mut ScoreBufs,
        out: &mut [f64],
    ) {
        debug_assert_eq!(cand.len(), out.len());
        debug_assert_eq!(cand_assign.shape(), (cand.len(), self.config.k));
        let e_out = self.params.value(self.item_out);
        let bias = self.params.value(self.item_bias);
        // G = W^cᵀ · D (K×d_e): the whole history collapsed into one
        // cluster-indexed context map.
        ic.wc.matmul_tn_into(&fold.d, &mut bufs.gmat);
        // vh_b = ā_b · G for every candidate at once (n×d_e).
        cand_assign.matmul_into(&bufs.gmat, &mut bufs.vh);
        // dw_k = Σ_j wc_{jk} sa_j — the collapsed Ŵ·α denominators.
        bufs.dw.clear();
        bufs.dw.resize(self.config.k, 0.0);
        for (j, &s) in fold.sa.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            for (o, &w) in bufs.dw.iter_mut().zip(ic.wc.row(j)) {
                *o += s * w;
            }
        }
        for (i, (&b, slot)) in cand.iter().zip(out.iter_mut()).enumerate() {
            let denom = 1e-8 + causer_tensor::simd::dot(cand_assign.row(i), &bufs.dw);
            *slot = bias.get(b, 0) + causer_tensor::simd::dot(e_out.row(b), bufs.vh.row(i)) / denom;
        }
    }

    /// Score every item in the catalog for one evaluation case. Returned
    /// scores are pre-sigmoid logits (monotone in probability).
    pub fn score_all(&self, ic: &InferenceCache, user: usize, history: &[Step]) -> Vec<f64> {
        let items: Vec<usize> = (0..self.config.num_items).collect();
        self.score_items(ic, user, history, &items)
    }

    /// Score an arbitrary candidate set (`out[i]` scores `items[i]`).
    /// Candidates are grouped by hard cluster, so the cost is one filtered
    /// RNN run per *distinct* cluster among `items` — scoring a single item
    /// runs one cluster, not `K`.
    pub fn score_items(
        &self,
        ic: &InferenceCache,
        user: usize,
        history: &[Step],
        items: &[usize],
    ) -> Vec<f64> {
        let mut scores = vec![0.0f64; items.len()];
        let mut bufs = ScoreBufs::new();
        self.score_items_with(ic, user, history, items, &mut bufs, &mut scores);
        scores
    }

    /// [`CauserModel::score_items`] against a caller-owned scratch pool and
    /// output slice — every per-call scratch buffer (the cluster groups,
    /// gathered candidates, group scores, fallback row) lives in `bufs` and
    /// is cleared in place rather than rebuilt. The stateless RNN re-encode
    /// (`history_run`) still allocates; the warm serving path avoids it
    /// entirely via the stream folds.
    pub fn score_items_with(
        &self,
        ic: &InferenceCache,
        user: usize,
        history: &[Step],
        items: &[usize],
        bufs: &mut ScoreBufs,
        scores: &mut [f64],
    ) {
        debug_assert_eq!(items.len(), scores.len());
        let hist = self.clamp_history(history);
        scores.fill(0.0);
        if hist.is_empty() {
            return;
        }

        if !self.config.variant.use_causal() {
            // Single unfiltered pattern, Ŵ ≡ 1, shared by all candidates.
            if let Some(run) = self.history_run(ic, user, hist, None) {
                self.uniform_vh_row(&run, &mut bufs.fallback_vh);
                for (slot, &b) in scores.iter_mut().zip(items) {
                    *slot = self.score_one_with_vh(&bufs.fallback_vh, b);
                }
            }
            return;
        }

        // Group candidate *positions* by hard cluster: candidates of cluster
        // c share the filter mask `P[a, c] > ε`, so at most K RNN runs score
        // any candidate set. The group vecs persist in the pool and are
        // cleared in place — K allocations per call become zero.
        bufs.groups.resize_with(self.config.k, Vec::new);
        for g in bufs.groups.iter_mut() {
            g.clear();
        }
        for (i, &b) in items.iter().enumerate() {
            bufs.groups[ic.hard_clusters[b]].push(i);
        }
        // Unfiltered fallback (Ŵ ≡ 1) for clusters whose filter empties the
        // history — computed lazily into the pooled row, shared by all such
        // clusters.
        let mut fallback: Option<bool> = None;
        let groups = std::mem::take(&mut bufs.groups);
        for (c, positions) in groups.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            bufs.cand.clear();
            bufs.cand.extend(positions.iter().map(|&i| items[i]));
            let Some(run) = self.history_run(ic, user, hist, Some(c)) else {
                // All steps filtered: fall back to the unfiltered history
                // with Ŵ ≡ 1, as in training.
                let has_fallback =
                    *fallback.get_or_insert_with(|| match self.history_run(ic, user, hist, None) {
                        Some(run) => {
                            self.uniform_vh_row(&run, &mut bufs.fallback_vh);
                            true
                        }
                        None => false,
                    });
                if has_fallback {
                    for (&i, &b) in positions.iter().zip(&bufs.cand) {
                        scores[i] = self.score_one_with_vh(&bufs.fallback_vh, b);
                    }
                }
                continue;
            };
            ic.rel.assignments.select_rows_into(&bufs.cand, &mut bufs.assign);
            bufs.out.clear();
            bufs.out.resize(bufs.cand.len(), 0.0);
            let assign = std::mem::take(&mut bufs.assign);
            let cand = std::mem::take(&mut bufs.cand);
            let mut out = std::mem::take(&mut bufs.out);
            self.score_candidates_with_run(ic, &run, &cand, &assign, bufs, &mut out);
            for (&i, &s) in positions.iter().zip(out.iter()) {
                scores[i] = s;
            }
            bufs.assign = assign;
            bufs.cand = cand;
            bufs.out = out;
        }
        bufs.groups = groups;
    }

    /// `uniform_vh` into a reused buffer (same arithmetic/order — bitwise).
    fn uniform_vh_row(&self, run: &HistoryRun, out: &mut Vec<f64>) {
        let denom: f64 = run.alpha.iter().sum::<f64>().max(1e-8);
        out.clear();
        out.extend(run.c_mat.sum_rows().row(0).iter().map(|&v| v / denom));
    }

    /// Plain forward over a history with an optional hard-cluster filter.
    /// Returns the stacked per-step context (see [`HistoryRun`]), or `None`
    /// when the filter empties every step.
    pub fn history_run(
        &self,
        ic: &InferenceCache,
        user: usize,
        history: &[Step],
        filter_cluster: Option<usize>,
    ) -> Option<HistoryRun> {
        let cfg = &self.config;
        let kept: Vec<Vec<usize>> = history
            .iter()
            .map(|step| self.kept_step(ic, step, filter_cluster))
            .filter(|s: &Vec<usize>| !s.is_empty())
            .collect();
        if kept.is_empty() {
            return None;
        }
        let user_row = self.params.value(self.user_emb).select_rows(&[user]);
        let mut state = self.cell.init_plain_state(1);
        let mut h_rows: Vec<Matrix> = Vec::with_capacity(kept.len());
        let mut s = Matrix::zeros(kept.len(), cfg.k);
        for (t, bag) in kept.iter().enumerate() {
            let x = self.step_input(ic, bag, &user_row, s.row_mut(t));
            state = self.cell.step_plain(&self.params, &x, &state);
            h_rows.push(state.h.clone());
        }
        let h_stack = Matrix::vstack(&h_rows.iter().collect::<Vec<_>>());
        let alpha = self.attention_weights(&h_stack, &state);
        let mut c_mat = h_stack.matmul(self.params.value(self.v)); // T×d_e
        for (t, &a) in alpha.iter().enumerate() {
            for v in c_mat.row_mut(t) {
                *v *= a;
            }
        }
        Some(HistoryRun { c_mat, s_bags: s, alpha })
    }

    /// Filter one history step for a hard-cluster stream: keep the items `a`
    /// with `Ŵ_{a→c} > ε` (`None` keeps the step unfiltered). Shared by the
    /// batch path ([`CauserModel::history_run`]) and the incremental path
    /// ([`CauserModel::advance_stream`]) so the two can never disagree on
    /// which steps survive.
    fn kept_step(
        &self,
        ic: &InferenceCache,
        step: &[usize],
        filter_cluster: Option<usize>,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        self.kept_step_into(ic, step, filter_cluster, &mut out);
        out
    }

    /// Allocation-free form of [`CauserModel::kept_step`]: filters into a
    /// reused buffer. Same predicate, same item order.
    fn kept_step_into(
        &self,
        ic: &InferenceCache,
        step: &[usize],
        filter_cluster: Option<usize>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match filter_cluster {
            Some(c) => {
                let eps = self.config.epsilon;
                out.extend(step.iter().copied().filter(|&a| ic.rel.w_a_to_cluster(a, c) > eps));
            }
            None => out.extend_from_slice(step),
        }
    }

    /// Build the RNN input row for one kept bag (summed encoder embeddings ∥
    /// summed free embeddings ∥ user row) while accumulating the bag's
    /// assignment rows into `s_row`. The per-item accumulation order is part
    /// of the bitwise contract between the batch and incremental encoders.
    fn step_input(
        &self,
        ic: &InferenceCache,
        bag: &[usize],
        user_row: &Matrix,
        s_row: &mut [f64],
    ) -> Matrix {
        let mut x = Matrix::zeros(0, 0);
        self.step_input_into(ic, bag, user_row, s_row, &mut x);
        x
    }

    /// Allocation-free form of [`CauserModel::step_input`]: assembles the
    /// concatenated input row `[Σ item_embs ∥ Σ item_in ∥ user]` directly
    /// into `x`'s segments. The per-item accumulation order matches the
    /// allocating form (and is part of the batch/incremental bitwise
    /// contract), so the rows are bitwise-equal.
    fn step_input_into(
        &self,
        ic: &InferenceCache,
        bag: &[usize],
        user_row: &Matrix,
        s_row: &mut [f64],
        x: &mut Matrix,
    ) {
        let cfg = &self.config;
        let free = self.params.value(self.item_in);
        x.reset_to(1, cfg.d2 + cfg.item_in_dim + cfg.user_dim);
        let (x_item, rest) = x.row_mut(0).split_at_mut(cfg.d2);
        let (x_free, x_user) = rest.split_at_mut(cfg.item_in_dim);
        for &a in bag {
            for (o, &e) in x_item.iter_mut().zip(ic.item_embs.row(a)) {
                *o += e;
            }
            for (o, &e) in x_free.iter_mut().zip(free.row(a)) {
                *o += e;
            }
            for (o, &w) in s_row.iter_mut().zip(ic.rel.assignments.row(a)) {
                *o += w;
            }
        }
        x_user.copy_from_slice(user_row.row(0));
    }

    /// Attention weights over a stacked forward, or the Ŵ≡1-style uniform
    /// weights for the `-att` variants. Shared by both encoder paths.
    fn attention_weights(&self, h_stack: &Matrix, state: &PlainState) -> Vec<f64> {
        if self.config.variant.use_attention() {
            self.attention.weights_plain(&self.params, h_stack, &state.h)
        } else {
            vec![1.0; h_stack.rows()]
        }
    }

    /// A fresh, empty incremental stream (zero RNN state, zero kept steps).
    pub fn new_stream(&self) -> StreamState {
        let cfg = &self.config;
        StreamState {
            state: self.cell.init_plain_state(1),
            h_stack: Matrix::zeros(0, cfg.hidden_dim),
            hv: Matrix::zeros(0, cfg.item_out_dim),
            run: HistoryRun {
                c_mat: Matrix::zeros(0, cfg.item_out_dim),
                s_bags: Matrix::zeros(0, cfg.k),
                alpha: Vec::new(),
            },
            fold: StreamFold::default(),
        }
    }

    /// Advance one incremental stream over `new_steps`: one `step_plain` per
    /// *kept* step, instead of re-encoding the whole history. After the call,
    /// `stream.run()` is exactly what [`CauserModel::history_run`] would
    /// return over the concatenation of every step the stream has ever
    /// consumed — bitwise on the scalar/sse2 kernel tiers (the serve
    /// equivalence suites assert this on trained weights), because both paths
    /// share [`CauserModel::kept_step`]/[`CauserModel::step_input`], the `h·V`
    /// projection is row-independent, and the attention re-weighting applies
    /// the same `weights_plain` arithmetic to the same stacked hidden states.
    ///
    /// Steps emptied by the filter are skipped, preserving the Ŵ≡1 fallback
    /// semantics: a stream that never keeps a step reports `run() == None`,
    /// the same condition under which `history_run` returns `None`.
    ///
    /// Convenience eager form of [`CauserModel::advance_stream_with`] +
    /// [`CauserModel::refresh_stream`] + [`CauserModel::ensure_fold`] with
    /// one-shot scratch; the serving warm path uses the deferred triple with
    /// pooled scratch so appends stay allocation-free and streams that no
    /// request consumes are never re-weighted.
    pub fn advance_stream(
        &self,
        ic: &InferenceCache,
        user: usize,
        filter_cluster: Option<usize>,
        new_steps: &[Step],
        stream: &mut StreamState,
    ) {
        let mut scratch = EncodeScratch::default();
        self.advance_stream_with(ic, user, filter_cluster, new_steps, stream, &mut scratch);
        self.refresh_stream(stream, &mut scratch);
        self.ensure_fold(stream);
    }

    /// Append `new_steps` to a stream without re-weighting: one RNN step, one
    /// `h_stack`/`hv` row, and one assignment bag per *kept* step —
    /// `O(d_h² + d_h·d_e)` each, independent of the stream length, and
    /// allocation-free once `scratch` and the stream's reserved capacity
    /// ([`StreamState::reserve_steps`]) are warm. The attention re-weight and
    /// the T-collapsed fold are left stale; consumers run
    /// [`CauserModel::refresh_stream`] (and [`CauserModel::ensure_fold`] for
    /// causal scoring) before reading `run()`/`fold()`.
    pub fn advance_stream_with(
        &self,
        ic: &InferenceCache,
        user: usize,
        filter_cluster: Option<usize>,
        new_steps: &[Step],
        stream: &mut StreamState,
        scratch: &mut EncodeScratch,
    ) {
        let mut user_selected = false;
        for step in new_steps {
            self.kept_step_into(ic, step, filter_cluster, &mut scratch.bag);
            if scratch.bag.is_empty() {
                continue;
            }
            if !user_selected {
                self.params
                    .value(self.user_emb)
                    .select_rows_into(std::slice::from_ref(&user), &mut scratch.user_row);
                user_selected = true;
            }
            scratch.s_row.clear();
            scratch.s_row.resize(self.config.k, 0.0);
            self.step_input_into(
                ic,
                &scratch.bag,
                &scratch.user_row,
                &mut scratch.s_row,
                &mut scratch.x,
            );
            self.cell.step_plain_into(
                &self.params,
                &scratch.x,
                &mut stream.state,
                &mut scratch.step,
            );
            stream.h_stack.push_row(stream.state.h.row(0));
            // hv row: h · V through the same matmul kernel as the full
            // re-encode's `h_stack · V` (row-independent, so appending rows
            // one at a time is bitwise-identical).
            stream.state.h.matmul_into(self.params.value(self.v), &mut scratch.hv_row);
            stream.hv.push_row(scratch.hv_row.row(0));
            stream.run.s_bags.push_row(&scratch.s_row);
        }
    }

    /// Re-weight a stale stream: recompute the attention weights over the
    /// whole stack (they depend on the final hidden state, so this is the
    /// irreducible O(T·d_h) residue of an append) and rebuild the
    /// step-ordered Ŵ≡1 accumulators in one fused pass over the append-only
    /// unscaled `hv` stack. The α-scaled context rows `C` are deliberately
    /// **not** materialized here: the Ŵ≡1 fallback never reads them, so the
    /// unfiltered stream skips the `T×d_e` rescale entirely. Consumers that
    /// do need `C` (the causal fold, `run()`) materialize it lazily via
    /// [`CauserModel::ensure_fold`] / [`CauserModel::ensure_run`].
    /// Allocation-free given warm scratch/capacity. No-op when the stream
    /// is already fresh, so redundant calls are cheap.
    pub fn refresh_stream(&self, stream: &mut StreamState, scratch: &mut EncodeScratch) {
        let t = stream.steps();
        if stream.fold.weight_steps == t {
            return;
        }
        // α over the full stack — same kernels/op order as `weights_plain`,
        // so the weights stay bitwise-equal to the full re-encode's.
        if self.config.variant.use_attention() {
            self.attention.weights_plain_into(
                &self.params,
                &stream.h_stack,
                &stream.state.h,
                &mut stream.run.alpha,
                &mut scratch.attn,
            );
        } else {
            stream.run.alpha.clear();
            stream.run.alpha.resize(t, 1.0);
        }
        // Ŵ≡1 fallback accumulators fused over the unscaled stack: each
        // `α_t·hv_t[j]` term is the same two-rounding multiply-then-add the
        // explicit `C_t = α_t (h_t V)` rescale plus row summation performed,
        // in the same ascending-`t` order, so `usum` stays bitwise vs
        // `uniform_vh` over the full run (the dispatched kernel is bitwise
        // across tiers — wider tiers only widen column lanes).
        stream.fold.usum.clear();
        stream.fold.usum.resize(self.config.item_out_dim, 0.0);
        simd::weighted_col_sums(
            stream.hv.data(),
            t,
            self.config.item_out_dim,
            &stream.run.alpha,
            &mut stream.fold.usum,
        );
        stream.fold.alpha_sum = stream.run.alpha.iter().sum();
        stream.fold.weight_steps = t;
    }

    /// Materialize the α-scaled context rows `C_t = α_t (h_t V)` from the
    /// unscaled `hv` stack after a re-weight, giving [`StreamState::run`]
    /// its fresh view. Requires [`CauserModel::refresh_stream`] first;
    /// no-op when already materialized. Split out of the re-weight so the
    /// Ŵ≡1 fallback path — which reads only the fold's `usum`/`alpha_sum` —
    /// never pays the `T×d_e` rescale.
    pub fn ensure_run(&self, stream: &mut StreamState) {
        let t = stream.steps();
        assert_eq!(stream.fold.weight_steps, t, "ensure_run requires refresh_stream first");
        if stream.fold.cmat_steps == t {
            return;
        }
        stream.run.c_mat.reset_to(t, self.config.item_out_dim);
        stream.run.c_mat.data_mut().copy_from_slice(stream.hv.data());
        for (row, &a) in (0..t).zip(stream.run.alpha.iter()) {
            for v in stream.run.c_mat.row_mut(row) {
                *v *= a;
            }
        }
        stream.fold.cmat_steps = t;
    }

    /// Recompute the T-collapsed causal accumulators `D = Σ_t s_tᵀ C_t` and
    /// `sa = Σ_t α_t s_t` from a re-weighted stream (an exact re-fold — drift
    /// cannot accumulate across appends). Requires
    /// [`CauserModel::refresh_stream`] first; no-op when already fresh.
    /// Skipped entirely for streams only consumed through the Ŵ≡1 fallback
    /// (the unfiltered stream), whose scoring needs just `usum`/`alpha_sum`.
    pub fn ensure_fold(&self, stream: &mut StreamState) {
        let t = stream.steps();
        assert_eq!(stream.fold.weight_steps, t, "ensure_fold requires refresh_stream first");
        if stream.fold.causal_steps == t {
            return;
        }
        // The causal fold reads the α-scaled context rows, deferred by
        // `refresh_stream` — materialize them first (no-op when fresh).
        self.ensure_run(stream);
        // D = Sᵀ · C through the dispatched matmul_tn kernel (skips the
        // zero assignment entries like the golden scorer's Ŵ == 0 skip).
        stream.run.s_bags.matmul_tn_into(&stream.run.c_mat, &mut stream.fold.d);
        stream.fold.sa.clear();
        stream.fold.sa.resize(self.config.k, 0.0);
        for (row, &a) in (0..t).zip(stream.run.alpha.iter()) {
            for (o, &s) in stream.fold.sa.iter_mut().zip(stream.run.s_bags.row(row)) {
                *o += a * s;
            }
        }
        stream.fold.causal_steps = t;
    }

    /// Explanation scores of §V-E for a single-item-per-step history:
    /// `Ŵ·α` for the full model, `Ŵ` for Causer(-att), `α` for
    /// Causer(-causal). Returns one score per original history position
    /// (filtered-out positions score 0).
    pub fn explanation_scores(
        &self,
        ic: &InferenceCache,
        user: usize,
        history_items: &[usize],
        target: usize,
    ) -> Vec<f64> {
        let cfg = &self.config;
        let eps = cfg.epsilon;
        let n = history_items.len();
        if n == 0 {
            return Vec::new();
        }
        // Soft per-item relation toward the concrete target (exact eq. 9).
        let w: Vec<f64> = history_items.iter().map(|&a| ic.rel.w_ab(a, target)).collect();
        let mut causal_scores = cfg.variant.use_causal();
        let mut kept: Vec<usize> =
            if causal_scores { (0..n).filter(|&t| w[t] > eps).collect() } else { (0..n).collect() };
        if kept.is_empty() {
            // Same fallback as scoring: with everything filtered, degrade to
            // the attention-only explanation over the full history.
            kept = (0..n).collect();
            causal_scores = false;
        }
        let user_row = self.params.value(self.user_emb).select_rows(&[user]);
        let mut state = self.cell.init_plain_state(1);
        let mut h_rows = Vec::with_capacity(kept.len());
        let free = self.params.value(self.item_in);
        for &t in &kept {
            let x_item = ic.item_embs.select_rows(&[history_items[t]]);
            let x_free = free.select_rows(&[history_items[t]]);
            let x = Matrix::hstack(&[&x_item, &x_free, &user_row]);
            state = self.cell.step_plain(&self.params, &x, &state);
            h_rows.push(state.h.clone());
        }
        let h_stack = Matrix::vstack(&h_rows.iter().collect::<Vec<_>>());
        let alpha: Vec<f64> = if cfg.variant.use_attention() {
            self.attention.weights_plain(&self.params, &h_stack, &state.h)
        } else {
            vec![1.0; kept.len()]
        };
        let mut scores = vec![0.0f64; n];
        for (idx, &t) in kept.iter().enumerate() {
            let causal_part = if causal_scores { w[t] } else { 1.0 };
            scores[t] = causal_part * alpha[idx];
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::GradStore;

    fn toy_model(variant: CauserVariant, rnn: RnnKind) -> CauserModel {
        let mut cfg = CauserConfig::new(4, 10, 6);
        cfg.variant = variant;
        cfg.rnn = rnn;
        cfg.k = 3;
        cfg.d1 = 8;
        cfg.d2 = 6;
        cfg.user_dim = 4;
        cfg.hidden_dim = 8;
        cfg.item_out_dim = 6;
        let mut rng = StdRng::seed_from_u64(99);
        let features = init::uniform(&mut rng, 10, 6, 1.0);
        CauserModel::new(cfg, features, 5)
    }

    fn toy_history() -> Vec<Step> {
        vec![vec![0], vec![1, 2], vec![3]]
    }

    #[test]
    fn training_graph_builds_and_backprops() {
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            let model = toy_model(CauserVariant::Full, rnn);
            let cache = model.relation_cache();
            let mut g = Graph::new();
            let shared = model.shared_nodes(&mut g);
            let steps = toy_history();
            let logits = model.sequence_logits(
                &mut g,
                &shared,
                &cache,
                1,
                &steps,
                &[1, 2],
                &[vec![5, 6], vec![7]],
            );
            assert_eq!(logits.len(), 2 + 2 + 1 + 1); // step1: 2 pos? no: step1 has 2 items? steps[1] = [1,2]
            let bce = model.bce_from_logits(&mut g, &logits).unwrap();
            let reg = model.regularizer(&mut g, &shared, 0.1, 1.0, 1.0);
            let loss = g.add(bce, reg);
            let mut gs = GradStore::new(&model.params);
            g.backward(loss, &mut gs);
            // Gradients must reach the causal graph and the cluster logits.
            assert!(gs.get(model.causal.wc).is_some());
        }
    }

    #[test]
    fn score_all_returns_full_catalog() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let scores = model.score_all(&ic, 2, &toy_history());
            assert_eq!(scores.len(), 10);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn score_items_matches_score_all_bitwise() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let all = model.score_all(&ic, 2, &toy_history());
            let subset = [9usize, 0, 4, 4];
            let s = model.score_items(&ic, 2, &toy_history(), &subset);
            for (i, &b) in subset.iter().enumerate() {
                assert_eq!(s[i].to_bits(), all[b].to_bits(), "item {b} ({variant:?})");
            }
        }
    }

    #[test]
    fn empty_history_scores_uniform() {
        let model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let ic = model.inference_cache();
        let scores = model.score_all(&ic, 0, &[]);
        assert!(scores.iter().all(|&s| s == 0.0), "uniform ⇒ all-equal logits");
    }

    #[test]
    fn explanation_scores_have_history_length() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let s = model.explanation_scores(&ic, 1, &[0, 3, 7], 2);
            assert_eq!(s.len(), 3);
            assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn filter_respects_epsilon() {
        let mut model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let cache = model.relation_cache();
        let history = toy_history();
        // Impossible threshold filters everything.
        model.config.epsilon = f64::INFINITY;
        let kept = model.filter_history(&cache, &history, 4);
        assert!(kept.iter().all(|s| s.is_empty()));
        // Permissive threshold keeps everything with non-negative relations.
        model.config.epsilon = f64::NEG_INFINITY;
        let kept = model.filter_history(&cache, &history, 4);
        assert_eq!(kept, history);
    }

    #[test]
    fn nocausal_variant_ignores_filtering() {
        let model = toy_model(CauserVariant::NoCausal, RnnKind::Gru);
        let cache = model.relation_cache();
        let history = toy_history();
        assert_eq!(model.filter_history(&cache, &history, 0), history);
    }

    #[test]
    fn slow_update_params_cover_cluster_and_graph() {
        let model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let ids = model.slow_update_params();
        assert!(!ids.is_empty());
        for id in &ids {
            let name = model.params.name(*id);
            assert!(name.starts_with("cluster.") || name.starts_with("causal."));
        }
        // Wc itself must be included.
        assert!(ids.contains(&model.causal.wc));
    }

    #[test]
    fn parameter_count_is_sane() {
        let model = toy_model(CauserVariant::Full, RnnKind::Gru);
        let n = model.num_parameters();
        assert!(n > 500 && n < 100_000, "{n}");
    }

    fn assert_run_eq(inc: &HistoryRun, full: &HistoryRun, ctx: &str) {
        assert_eq!(inc.alpha.len(), full.alpha.len(), "{ctx}: step count");
        for (a, b) in inc.alpha.iter().zip(&full.alpha) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: alpha");
        }
        for (a, b) in inc.c_mat.data().iter().zip(full.c_mat.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: c_mat");
        }
        for (a, b) in inc.s_bags.data().iter().zip(full.s_bags.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: s_bags");
        }
    }

    #[test]
    fn incremental_stream_matches_history_run_bitwise() {
        let history: Vec<Step> =
            vec![vec![0], vec![1, 2], vec![3], vec![4, 5, 6], vec![7], vec![8, 9]];
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            for variant in CauserVariant::ALL {
                let model = toy_model(variant, rnn);
                let ic = model.inference_cache();
                for filter in [None, Some(0), Some(1), Some(2)] {
                    let mut stream = model.new_stream();
                    for t in 0..history.len() {
                        model.advance_stream(&ic, 2, filter, &history[t..t + 1], &mut stream);
                        let full = model.history_run(&ic, 2, &history[..t + 1], filter);
                        let ctx = format!("{rnn:?}/{variant:?}/filter={filter:?}/t={t}");
                        match (stream.run(), full) {
                            (None, None) => {}
                            (Some(inc), Some(full)) => assert_run_eq(inc, &full, &ctx),
                            (inc, full) => panic!(
                                "{ctx}: warm/cold disagree on fallback \
                                 (inc={:?} full={:?})",
                                inc.is_some(),
                                full.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn advance_stream_batch_equals_one_at_a_time() {
        let history: Vec<Step> = vec![vec![0, 1], vec![2], vec![3, 4], vec![5], vec![6, 7]];
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            let model = toy_model(CauserVariant::Full, rnn);
            let ic = model.inference_cache();
            let mut one = model.new_stream();
            for step in &history {
                model.advance_stream(&ic, 1, Some(1), std::slice::from_ref(step), &mut one);
            }
            let mut batch = model.new_stream();
            model.advance_stream(&ic, 1, Some(1), &history, &mut batch);
            assert_eq!(one.steps(), batch.steps());
            if let (Some(a), Some(b)) = (one.run(), batch.run()) {
                assert_run_eq(a, b, "batch-vs-single");
            }
            // The RNN state itself (incl. the LSTM carry) must agree too.
            for (a, b) in one.state().h.data().iter().zip(batch.state().h.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "hidden state");
            }
            match (&one.state().c, &batch.state().c) {
                (None, None) => assert_eq!(rnn, RnnKind::Gru),
                (Some(a), Some(b)) => {
                    assert_eq!(rnn, RnnKind::Lstm);
                    for (x, y) in a.data().iter().zip(b.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "lstm carry");
                    }
                }
                _ => panic!("carry presence disagrees"),
            }
        }
    }

    #[test]
    fn fold_scores_match_golden_within_tolerance() {
        let history: Vec<Step> =
            vec![vec![0], vec![1, 2], vec![3], vec![4, 5, 6], vec![7], vec![8, 9], vec![0, 3]];
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            for variant in CauserVariant::ALL {
                let model = toy_model(variant, rnn);
                let ic = model.inference_cache();
                let cand: Vec<usize> = vec![0, 3, 5, 9];
                let mut assign = Matrix::zeros(0, 0);
                ic.rel.assignments.select_rows_into(&cand, &mut assign);
                for filter in [None, Some(0), Some(1), Some(2)] {
                    let mut stream = model.new_stream();
                    model.advance_stream(&ic, 2, filter, &history, &mut stream);
                    let (Some(run), Some(fold)) = (stream.run(), stream.fold()) else {
                        continue;
                    };
                    let mut bufs = ScoreBufs::new();
                    let mut golden = vec![0.0; cand.len()];
                    model.score_candidates_with_run(
                        &ic,
                        run,
                        &cand,
                        &assign,
                        &mut bufs,
                        &mut golden,
                    );
                    let mut fast = vec![0.0; cand.len()];
                    model.score_candidates_with_fold(
                        &ic, fold, &cand, &assign, &mut bufs, &mut fast,
                    );
                    for (g, f) in golden.iter().zip(&fast) {
                        assert!(
                            (g - f).abs() <= 1e-12,
                            "{rnn:?}/{variant:?}/filter={filter:?}: fold {f} vs golden {g}"
                        );
                    }
                    // The Ŵ≡1 fallback row must stay bitwise.
                    let expect = model.uniform_vh(run);
                    let mut got = Vec::new();
                    model.uniform_vh_into(fold, &mut got);
                    assert_eq!(expect.len(), got.len());
                    for (a, b) in expect.iter().zip(&got) {
                        assert_eq!(a.to_bits(), b.to_bits(), "uniform fallback drifted");
                    }
                }
            }
        }
    }

    #[test]
    fn deferred_advance_matches_eager_bitwise() {
        let history: Vec<Step> = vec![vec![0, 1], vec![2], vec![3, 4], vec![5], vec![6, 7]];
        for rnn in [RnnKind::Gru, RnnKind::Lstm] {
            let model = toy_model(CauserVariant::Full, rnn);
            let ic = model.inference_cache();
            for filter in [None, Some(0), Some(2)] {
                let mut eager = model.new_stream();
                let mut lazy = model.new_stream();
                let mut scratch = EncodeScratch::default();
                for step in &history {
                    model.advance_stream(&ic, 1, filter, std::slice::from_ref(step), &mut eager);
                    model.advance_stream_with(
                        &ic,
                        1,
                        filter,
                        std::slice::from_ref(step),
                        &mut lazy,
                        &mut scratch,
                    );
                }
                // Appends alone leave the re-weight stale (unless nothing was
                // ever kept, in which case 0 == 0 is trivially fresh).
                assert_eq!(lazy.weights_are_fresh(), lazy.steps() == 0);
                model.refresh_stream(&mut lazy, &mut scratch);
                model.ensure_fold(&mut lazy);
                assert!(lazy.fold_is_fresh());
                assert_eq!(eager.steps(), lazy.steps());
                if let (Some(a), Some(b)) = (eager.run(), lazy.run()) {
                    assert_run_eq(a, b, "eager-vs-deferred");
                }
                if let (Some(a), Some(b)) = (eager.fold(), lazy.fold()) {
                    for (x, y) in a.d.data().iter().zip(b.d.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "fold D");
                    }
                    for (x, y) in a.sa.iter().zip(&b.sa) {
                        assert_eq!(x.to_bits(), y.to_bits(), "fold sa");
                    }
                    for (x, y) in a.usum.iter().zip(&b.usum) {
                        assert_eq!(x.to_bits(), y.to_bits(), "fold usum");
                    }
                    assert_eq!(a.alpha_sum.to_bits(), b.alpha_sum.to_bits(), "fold alpha_sum");
                }
            }
        }
    }

    #[test]
    fn score_items_with_reuses_pool_and_matches_score_items() {
        for variant in CauserVariant::ALL {
            let model = toy_model(variant, RnnKind::Gru);
            let ic = model.inference_cache();
            let items = [9usize, 0, 4, 4, 7, 2];
            let expect = model.score_items(&ic, 2, &toy_history(), &items);
            let mut bufs = ScoreBufs::new();
            let mut got = vec![0.0; items.len()];
            // Two passes over the same pool: results must be identical and
            // independent of leftover pool contents.
            for _ in 0..2 {
                model.score_items_with(&ic, 2, &toy_history(), &items, &mut bufs, &mut got);
                for (a, b) in expect.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{variant:?}");
                }
            }
        }
    }

    #[test]
    fn filtered_out_stream_reports_no_run() {
        let mut model = toy_model(CauserVariant::Full, RnnKind::Gru);
        model.config.epsilon = f64::INFINITY; // nothing survives the filter
        let ic = model.inference_cache();
        let mut stream = model.new_stream();
        model.advance_stream(&ic, 0, Some(0), &toy_history(), &mut stream);
        assert_eq!(stream.steps(), 0);
        assert!(stream.run().is_none(), "empty filter must report the Ŵ≡1 fallback condition");
        assert!(stream.approx_bytes() >= 8, "state itself still counts toward the budget");
    }

    #[test]
    fn stream_bytes_grow_with_steps_and_cover_the_carry() {
        let model = toy_model(CauserVariant::Full, RnnKind::Lstm);
        let ic = model.inference_cache();
        let mut stream = model.new_stream();
        let empty = stream.approx_bytes();
        model.advance_stream(&ic, 3, None, &toy_history(), &mut stream);
        assert_eq!(stream.steps(), 3);
        assert!(stream.approx_bytes() > empty);
        // LSTM streams are strictly larger than GRU streams of the same
        // shape: the carry is resident and must be charged.
        let gru = toy_model(CauserVariant::Full, RnnKind::Gru);
        let gic = gru.inference_cache();
        let mut gstream = gru.new_stream();
        gru.advance_stream(&gic, 3, None, &toy_history(), &mut gstream);
        assert!(stream.approx_bytes() > gstream.approx_bytes());
    }
}
