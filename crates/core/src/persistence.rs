//! Save/load trained Causer models as JSON: config + named parameters.
//! Loading reconstructs the model from its config and overwrites every
//! parameter by name, then verifies nothing was missed — so a reloaded
//! model scores identically to the saved one.

use crate::model::{CauserConfig, CauserModel};
use causer_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Serializable snapshot of a trained model.
#[derive(Serialize, Deserialize)]
pub struct ModelFile {
    pub config: CauserConfig,
    pub features: Matrix,
    /// `(name, value)` pairs for every parameter.
    pub params: Vec<(String, Matrix)>,
}

/// Snapshot a model.
pub fn snapshot(model: &CauserModel) -> ModelFile {
    ModelFile {
        config: model.config.clone(),
        features: model.features.clone(),
        params: model
            .params
            .iter()
            .map(|(_, name, value)| (name.to_string(), value.clone()))
            .collect(),
    }
}

/// Rebuild a model from a snapshot. Fails if the snapshot's parameter names
/// do not exactly cover the freshly-constructed model's parameters.
pub fn restore(file: ModelFile) -> Result<CauserModel, String> {
    let mut model = CauserModel::new(file.config, file.features, 0);
    let mut seen = 0usize;
    for (name, value) in file.params {
        let id = model
            .params
            .id_of(&name)
            .ok_or_else(|| format!("unknown parameter {name:?} in model file"))?;
        if model.params.value(id).shape() != value.shape() {
            return Err(format!(
                "shape mismatch for {name:?}: file {:?} vs model {:?}",
                value.shape(),
                model.params.value(id).shape()
            ));
        }
        model.params.set_value(id, value);
        seen += 1;
    }
    if seen != model.params.len() {
        return Err(format!("model file covers {seen} of {} parameters", model.params.len()));
    }
    Ok(model)
}

/// Save a model as JSON.
pub fn save_model(model: &CauserModel, path: &Path) -> std::io::Result<()> {
    let json = serde_json::to_string(&snapshot(model)).map_err(std::io::Error::other)?;
    let mut out = std::fs::File::create(path)?;
    out.write_all(json.as_bytes())
}

/// Load a model from JSON.
pub fn load_model(path: &Path) -> std::io::Result<CauserModel> {
    let mut json = String::new();
    std::fs::File::open(path)?.read_to_string(&mut json)?;
    let file: ModelFile = serde_json::from_str(&json).map_err(std::io::Error::other)?;
    restore(file).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::SeqRecommender;
    use crate::{CauserRecommender, TrainConfig};
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn save_load_round_trip_scores_identically() {
        let profile = DatasetProfile::paper(DatasetKind::Epinions).scaled(0.03);
        let sim = simulate(&profile, 5);
        let split = sim.interactions.leave_last_out();
        let cfg =
            crate::CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
        let mut rec = CauserRecommender::new(
            cfg,
            sim.features.clone(),
            TrainConfig { epochs: 2, ..Default::default() },
            5,
        );
        rec.fit(&split);

        let dir = std::env::temp_dir().join("causer_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&rec.model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let case = &split.test[0];
        let original = rec.scores(case);
        let ic = loaded.inference_cache();
        let restored = loaded.score_all(&ic, case.user, &case.history);
        assert_eq!(original.len(), restored.len());
        for (a, b) in original.iter().zip(restored.iter()) {
            // JSON float text round-trip: near-exact.
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn restore_rejects_wrong_parameters() {
        let profile = DatasetProfile::paper(DatasetKind::Epinions).scaled(0.02);
        let sim = simulate(&profile, 6);
        let cfg =
            crate::CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
        let model = CauserModel::new(cfg, sim.features.clone(), 1);
        let mut file = snapshot(&model);
        file.params[0].0 = "no_such_param".into();
        assert!(restore(file).is_err());

        let mut file2 = snapshot(&model);
        file2.params.pop();
        assert!(restore(file2).is_err());
    }
}
