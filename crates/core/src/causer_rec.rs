//! [`SeqRecommender`] adapter around [`CauserModel`] + Algorithm 1 training.

use crate::model::{CauserConfig, CauserModel, InferenceCache};
use crate::recommender::SeqRecommender;
use crate::train::{train, TrainConfig, TrainReport};
use causer_data::{EvalCase, LeaveLastOut};
use causer_tensor::Matrix;

/// A Causer model packaged for the evaluation harness: construct with a
/// config and raw item features, [`fit`](SeqRecommender::fit), then score.
pub struct CauserRecommender {
    pub model: CauserModel,
    pub train_config: TrainConfig,
    pub last_report: Option<TrainReport>,
    cache: Option<InferenceCache>,
}

impl CauserRecommender {
    pub fn new(
        config: CauserConfig,
        features: Matrix,
        train_config: TrainConfig,
        seed: u64,
    ) -> Self {
        CauserRecommender {
            model: CauserModel::new(config, features, seed),
            train_config,
            last_report: None,
            cache: None,
        }
    }

    /// Rebuild the inference cache (after manual parameter updates).
    pub fn refresh_cache(&mut self) {
        self.cache = Some(self.model.inference_cache());
    }

    /// The learned cluster-level causal graph, binarized at the model's ε.
    /// As in the NOTEARS post-processing, the threshold is escalated until
    /// the binarized graph is acyclic (the continuous constraint drives
    /// `h(W^c)` to ~0, but weak residual cycles can survive any fixed
    /// threshold).
    pub fn learned_cluster_graph(&self) -> causer_causal::DiGraph {
        let mut eps = self.model.config.epsilon;
        loop {
            let g = self.model.causal.binarized(&self.model.params, eps);
            if g.is_dag() {
                return g;
            }
            eps *= 1.25;
        }
    }
}

impl SeqRecommender for CauserRecommender {
    fn name(&self) -> String {
        format!("{} ({})", self.model.config.variant.label(), self.model.config.rnn.name())
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        let report = train(&mut self.model, split, &self.train_config);
        self.last_report = Some(report);
        self.refresh_cache();
    }

    fn scores(&self, case: &EvalCase) -> Vec<f64> {
        let cache = self.cache.as_ref().expect("fit() must run before scores()");
        self.model.score_all(cache, case.user, &case.history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::{evaluate, PopRecommender, RandomRecommender};
    use crate::variants::CauserVariant;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn trained_causer_beats_random() {
        let mut profile = DatasetProfile::paper(DatasetKind::Baby).scaled(0.01);
        profile.p_causal = 0.8;
        let sim = simulate(&profile, 13);
        let split = sim.interactions.leave_last_out();

        let mut cfg = CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
        cfg.k = 5;
        cfg.variant = CauserVariant::Full;
        let tc = TrainConfig { epochs: 4, batch_size: 32, lr: 0.01, ..Default::default() };
        let mut causer = CauserRecommender::new(cfg, sim.features.clone(), tc, 7);
        causer.fit(&split);

        let mut random = RandomRecommender::new(3);
        random.fit(&split);
        let c = evaluate(&causer, &split.test, 5, 200);
        let r = evaluate(&random, &split.test, 5, 200);
        assert!(c.ndcg > r.ndcg, "causer ndcg {} should beat random {}", c.ndcg, r.ndcg);
        // And it should at least match the popularity floor on causal data.
        let mut pop = PopRecommender::default();
        pop.fit(&split);
        let p = evaluate(&pop, &split.test, 5, 200);
        assert!(
            c.ndcg > p.ndcg * 0.5,
            "causer ndcg {} collapsed far below popularity {}",
            c.ndcg,
            p.ndcg
        );
    }

    #[test]
    fn learned_graph_is_reportable() {
        let profile = DatasetProfile::paper(DatasetKind::Epinions).scaled(0.05);
        let sim = simulate(&profile, 19);
        let split = sim.interactions.leave_last_out();
        let mut cfg = CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
        cfg.k = profile.true_clusters;
        let tc = TrainConfig { epochs: 2, batch_size: 32, ..Default::default() };
        let mut causer = CauserRecommender::new(cfg, sim.features.clone(), tc, 5);
        causer.fit(&split);
        let g = causer.learned_cluster_graph();
        assert_eq!(g.n(), profile.true_clusters);
    }
}
