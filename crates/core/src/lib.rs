//! # causer-core
//!
//! The paper's primary contribution: **Causer**, a sequential recommender
//! with a jointly-learned cluster-level causal graph (ICDE 2023).
//!
//! Module map (→ paper sections):
//! - [`clustering`] — encoder–decoder item clustering, eqs. (6)–(8);
//! - [`causal_graph`] — `W^c`, the item-level relations of eq. (9), L1 and
//!   NOTEARS acyclicity penalties;
//! - [`rnn`] — the GRU/LSTM architectures `g`;
//! - [`attention`] — the bilinear local attention α;
//! - [`model`] — eq. (10): causal history filtering, causal-effect × local
//!   attention scoring, full-catalog inference, explanation scores;
//! - [`mod@train`] — Algorithm 1: augmented-Lagrangian joint training;
//! - [`variants`] — the Table V ablations;
//! - [`recommender`] — the [`SeqRecommender`] trait shared with baselines,
//!   plus evaluation, popularity and random floors;
//! - [`causer_rec`] — the packaged, fit-and-score adapter.
//!
//! ```no_run
//! use causer_core::{CauserConfig, CauserRecommender, TrainConfig, SeqRecommender, evaluate};
//! use causer_data::{simulate, DatasetKind, DatasetProfile};
//!
//! let profile = DatasetProfile::paper(DatasetKind::Baby).scaled(0.05);
//! let sim = simulate(&profile, 42);
//! let split = sim.interactions.leave_last_out();
//! let cfg = CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
//! let mut model = CauserRecommender::new(cfg, sim.features.clone(), TrainConfig::default(), 7);
//! model.fit(&split);
//! let report = evaluate(&model, &split.test, 5, usize::MAX);
//! println!("F1@5 = {:.4}, NDCG@5 = {:.4}", report.f1, report.ndcg);
//! ```

pub mod attention;
pub mod causal_graph;
pub mod causer_rec;
pub mod clustering;
pub mod dynamic;
pub mod explain;
pub mod model;
pub mod persistence;
pub mod recommender;
pub mod rnn;
pub mod train;
pub mod variants;

pub use causal_graph::{total_effects, ClusterCausalGraph, ClusterEffectCache, ItemRelationCache};
pub use causer_rec::CauserRecommender;
pub use clustering::ClusterModule;
pub use dynamic::{fit_dynamic_graphs, DynamicGraphConfig, DynamicGraphs};
pub use model::{
    CauserConfig, CauserModel, EncodeScratch, HistoryRun, InferenceCache, ScoreBufs, StreamFold,
    StreamState,
};
pub use persistence::{load_model, save_model};
pub use recommender::{evaluate, PopRecommender, RandomRecommender, SeqRecommender};
pub use rnn::{Cell, RnnKind};
pub use train::{train, TrainConfig, TrainReport};
pub use variants::CauserVariant;
