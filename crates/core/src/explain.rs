//! Counterfactual explanations: beyond the paper's `Ŵ·α` scores (§V-E),
//! this module measures each history item's *interventional* importance —
//! how much the target's score drops when that item is removed from the
//! history. "Determining their causal relations may depend on whether the
//! absent of one item can lead to the disappearance of the other one"
//! (§II-B) — this is that counterfactual, evaluated through the model.

use crate::model::{CauserModel, InferenceCache};
use causer_data::Step;

impl CauserModel {
    /// Score a single candidate item for a history (plain-matrix path).
    /// Costs one filtered RNN run — the item's cluster group — not a
    /// full-catalog sweep.
    pub fn score_item(
        &self,
        ic: &InferenceCache,
        user: usize,
        history: &[Step],
        item: usize,
    ) -> f64 {
        self.score_items(ic, user, history, &[item])[0]
    }

    /// Counterfactual explanation scores for a single-item-per-step
    /// history: `score(b | H) − score(b | H \ {t})` per position `t`.
    /// Positive values mean removing the item *hurts* the prediction —
    /// i.e., the model treats it as a cause.
    pub fn counterfactual_scores(
        &self,
        ic: &InferenceCache,
        user: usize,
        history_items: &[usize],
        target: usize,
    ) -> Vec<f64> {
        let full_history: Vec<Step> = history_items.iter().map(|&i| vec![i]).collect();
        let base = self.score_item(ic, user, &full_history, target);
        (0..history_items.len())
            .map(|t| {
                let ablated: Vec<Step> = history_items
                    .iter()
                    .enumerate()
                    .filter(|&(s, _)| s != t)
                    .map(|(_, &i)| vec![i])
                    .collect();
                if ablated.is_empty() {
                    return 0.0;
                }
                base - self.score_item(ic, user, &ablated, target)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CauserConfig;
    use crate::variants::CauserVariant;
    use causer_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_model(variant: CauserVariant) -> CauserModel {
        let mut cfg = CauserConfig::new(4, 12, 6);
        cfg.variant = variant;
        cfg.k = 3;
        cfg.d1 = 8;
        cfg.d2 = 6;
        cfg.user_dim = 4;
        cfg.hidden_dim = 8;
        cfg.item_out_dim = 6;
        let mut rng = StdRng::seed_from_u64(123);
        let features = init::uniform(&mut rng, 12, 6, 1.0);
        CauserModel::new(cfg, features, 9)
    }

    #[test]
    fn score_item_matches_score_all() {
        let model = toy_model(CauserVariant::Full);
        let ic = model.inference_cache();
        let history = vec![vec![0], vec![3, 4], vec![7]];
        let all = model.score_all(&ic, 1, &history);
        for item in [0usize, 5, 11] {
            assert_eq!(model.score_item(&ic, 1, &history, item), all[item]);
        }
    }

    #[test]
    fn counterfactual_scores_shape_and_finiteness() {
        for variant in [CauserVariant::Full, CauserVariant::NoCausal] {
            let model = toy_model(variant);
            let ic = model.inference_cache();
            let s = model.counterfactual_scores(&ic, 0, &[1, 5, 9], 2);
            assert_eq!(s.len(), 3);
            assert!(s.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn single_item_history_counterfactual_is_zero() {
        let model = toy_model(CauserVariant::Full);
        let ic = model.inference_cache();
        let s = model.counterfactual_scores(&ic, 0, &[4], 2);
        assert_eq!(s, vec![0.0]);
    }
}
