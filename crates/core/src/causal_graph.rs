//! The cluster-level causal graph `W^c ∈ R^{K×K}` and the induced
//! item-level relations of eq. (9): `W_ab = ā^T W^c b̄`.
//!
//! `W^c` is a trainable parameter regularized by the NOTEARS acyclicity
//! constraint (the `acyclicity` op) and an L1 sparsity penalty; the
//! item-level matrix is never materialized — columns `W_{·b}` are computed
//! on demand from the cached products.

use causer_causal::DiGraph;
use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::Rng;

/// Trainable cluster-level causal graph.
#[derive(Clone, Debug)]
pub struct ClusterCausalGraph {
    pub k: usize,
    pub wc: ParamId,
}

impl ClusterCausalGraph {
    pub fn new<R: Rng + ?Sized>(ps: &mut ParamSet, prefix: &str, k: usize, rng: &mut R) -> Self {
        // Near-zero init: relations start below any tuned ε, so every
        // candidate initially takes the unfiltered Ŵ≡1 fallback path (see
        // `CauserModel::sequence_logits`), and the structure-fitting pass
        // grows the *correctly oriented* relations before the acyclicity
        // penalty starts locking in edge directions. (A dense positive init
        // makes the acyclicity penalty pick arbitrary orientations before
        // the data has spoken.)
        let wc = ps.add(&format!("{prefix}.Wc"), init::uniform(rng, k, k, 0.01));
        ClusterCausalGraph { k, wc }
    }

    /// The off-diagonal-masked `W^c` node (self-causation is excluded).
    pub fn node(&self, g: &mut Graph, ps: &ParamSet) -> NodeId {
        let w = g.param(ps, self.wc);
        let mask = g.constant(offdiag_mask(self.k));
        g.mul(w, mask)
    }

    /// Plain masked `W^c` value.
    pub fn value(&self, ps: &ParamSet) -> Matrix {
        ps.value(self.wc).hadamard(&offdiag_mask(self.k))
    }

    /// L1 sparsity penalty `λ ||W^c||₁` as a graph node.
    pub fn l1_penalty(&self, g: &mut Graph, ps: &ParamSet, lambda: f64) -> NodeId {
        let w = self.node(g, ps);
        let l1 = g.l1(w);
        g.scale(l1, lambda)
    }

    /// Acyclicity residual `b(W^c) = tr(e^{W^c∘W^c}) − K` as a graph node.
    pub fn acyclicity_node(&self, g: &mut Graph, ps: &ParamSet) -> NodeId {
        let w = self.node(g, ps);
        g.acyclicity(w)
    }

    /// Plain acyclicity residual.
    pub fn acyclicity_value(&self, ps: &ParamSet) -> f64 {
        causer_causal::acyclicity(&self.value(ps))
    }

    /// Binarized cluster DAG at threshold `epsilon`.
    pub fn binarized(&self, ps: &ParamSet, epsilon: f64) -> DiGraph {
        DiGraph::from_weighted(&self.value(ps), epsilon)
    }
}

/// `1 − I`, the mask that removes self-causation.
pub fn offdiag_mask(k: usize) -> Matrix {
    Matrix::from_fn(k, k, |i, j| if i == j { 0.0 } else { 1.0 })
}

/// Per-epoch cache of the item-level causal relations (Algorithm 1 line 7):
/// holds the plain assignment matrix `Ā (|V|×K)` and the product
/// `P = Ā · W^c (|V|×K)`, from which `W_ab = P_a · Ā_b` in `O(K)`.
#[derive(Clone, Debug)]
pub struct ItemRelationCache {
    pub assignments: Matrix,
    pub p: Matrix,
}

impl ItemRelationCache {
    pub fn build(assignments: Matrix, wc: &Matrix) -> Self {
        let p = assignments.matmul(wc);
        ItemRelationCache { assignments, p }
    }

    pub fn num_items(&self) -> usize {
        self.assignments.rows()
    }

    /// Item-level causal strength `W_ab` (eq. 9).
    #[inline]
    pub fn w_ab(&self, a: usize, b: usize) -> f64 {
        self.p.row(a).iter().zip(self.assignments.row(b)).map(|(&x, &y)| x * y).sum()
    }

    /// Column `W_{·b}` for all items `a` at once (`|V|` values).
    pub fn column(&self, b: usize) -> Vec<f64> {
        let bb = self.assignments.row(b);
        (0..self.num_items())
            .map(|a| self.p.row(a).iter().zip(bb).map(|(&x, &y)| x * y).sum())
            .collect()
    }

    /// Causal strength from item `a` toward *cluster* `c` — used at
    /// inference where candidate masks are grouped by hard cluster
    /// (footnote 5: η controls assignment hardness, so the hard-cluster
    /// mask is the η→0 limit of the soft one).
    #[inline]
    pub fn w_a_to_cluster(&self, a: usize, c: usize) -> f64 {
        self.p.get(a, c)
    }
}

/// Model-level serving cache built **once per model snapshot** and shared by
/// every request: the catalog grouped by hard cluster, the per-cluster
/// gathered assignment rows (the `Ā` gathers [`ItemRelationCache`] users
/// would otherwise redo per call), and the total cluster-level causal
/// effects.
///
/// The total effect of cluster `i` on cluster `j` is the usual linear-SEM
/// path sum `T = Σ_{p=1}^{K-1} (W^c)^p` — direct effect plus every indirect
/// path, truncated at length `K−1`, which is exact once `W^c` is acyclic
/// (any longer path must revisit a cluster).
#[derive(Clone, Debug)]
pub struct ClusterEffectCache {
    /// Catalog item ids grouped by hard cluster (`K` groups).
    pub members: Vec<Vec<usize>>,
    /// Gathered assignment rows per cluster: `member_assign[c]` is
    /// `|members[c]| × K`, row `i` = `Ā_{members[c][i]}`.
    pub member_assign: Vec<Matrix>,
    /// Total (direct + indirect) cluster-level effects (`K×K`).
    pub total: Matrix,
}

impl ClusterEffectCache {
    pub fn build(rel: &ItemRelationCache, hard_clusters: &[usize], wc: &Matrix) -> Self {
        let k = wc.rows();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (b, &c) in hard_clusters.iter().enumerate() {
            members[c].push(b);
        }
        let member_assign = members.iter().map(|cand| rel.assignments.select_rows(cand)).collect();
        ClusterEffectCache { members, member_assign, total: total_effects(wc) }
    }

    /// Total causal effect of cluster `from` on cluster `to`.
    #[inline]
    pub fn total_effect(&self, from: usize, to: usize) -> f64 {
        self.total.get(from, to)
    }

    /// Total-effect mass each cluster receives from a set of seed clusters —
    /// the stage-1 reachability score of the two-stage retrieval path.
    ///
    /// For every seed `r` (a cluster the user recently interacted with), each
    /// cluster `c ≠ r` accumulates `|T[r, c]|`: the magnitude of the total
    /// (direct + every indirect path) causal effect of `r` on `c` in the
    /// learned DAG. The seed itself accumulates `self_affinity ×
    /// max_c |T[r, c]|` — a seed cluster is treated as exactly as relevant as
    /// its strongest outgoing effect, so a seed with **no** outgoing effects
    /// contributes nothing at all and a user whose recent clusters are all
    /// DAG sinks yields an all-zero vector (callers fall back to exact
    /// full-catalog scoring in that case).
    ///
    /// Duplicate seeds accumulate additively, which makes recency frequency
    /// count: a cluster the user hit three times recently seeds three times
    /// the mass of one hit once. Out-of-range seeds are ignored.
    pub fn reachable_mass(&self, seeds: &[usize], self_affinity: f64) -> Vec<f64> {
        let k = self.total.rows();
        let mut mass = vec![0.0f64; k];
        for &r in seeds {
            if r >= k {
                continue;
            }
            let row = self.total.row(r);
            let strongest = row.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            mass[r] += self_affinity * strongest;
            for (c, &v) in row.iter().enumerate() {
                if c != r {
                    mass[c] += v.abs();
                }
            }
        }
        mass
    }

    /// Clusters ranked by their total effect on `to` (strongest first),
    /// excluding zero-effect clusters — the per-request session explanation
    /// the serving layer attaches to recommendations.
    pub fn top_influencers(&self, to: usize, n: usize) -> Vec<(usize, f64)> {
        let col = self.total.col(to);
        let mut ranked: Vec<(usize, f64)> =
            col.into_iter().enumerate().filter(|&(c, e)| c != to && e != 0.0).collect();
        ranked
            .sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(n);
        ranked
    }
}

/// `Σ_{p=1}^{K-1} W^p` — total causal effects along paths of every length
/// that can exist in an acyclic `K`-cluster graph.
pub fn total_effects(wc: &Matrix) -> Matrix {
    let k = wc.rows();
    let mut total = wc.clone();
    let mut power = wc.clone();
    for _ in 2..k.max(2) {
        power = power.matmul(wc);
        total = total.add(&power);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diagonal_is_masked() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ps = ParamSet::new();
        let g = ClusterCausalGraph::new(&mut ps, "cg", 4, &mut rng);
        let v = g.value(&ps);
        for i in 0..4 {
            assert_eq!(v.get(i, i), 0.0);
        }
    }

    #[test]
    fn eq9_matches_direct_computation() {
        // Hand check W_ab = Σ_ij ā_i W^c_ij b̄_j.
        let assign = Matrix::from_vec(2, 2, vec![0.8, 0.2, 0.3, 0.7]);
        let wc = Matrix::from_vec(2, 2, vec![0.0, 0.9, 0.1, 0.0]);
        let cache = ItemRelationCache::build(assign.clone(), &wc);
        let mut expected = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                expected += assign.get(0, i) * wc.get(i, j) * assign.get(1, j);
            }
        }
        assert!((cache.w_ab(0, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn hard_assignments_give_cluster_relation_exactly() {
        // η → 0 case from the paper: one-hot assignments make item relations
        // equal to the underlying cluster relation.
        let assign = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let mut wc = Matrix::zeros(3, 3);
        wc.set(0, 2, 0.77);
        let cache = ItemRelationCache::build(assign, &wc);
        assert!((cache.w_ab(0, 1) - 0.77).abs() < 1e-12);
        assert!((cache.w_ab(1, 0) - 0.0).abs() < 1e-12);
        assert!((cache.w_a_to_cluster(0, 2) - 0.77).abs() < 1e-12);
    }

    #[test]
    fn column_matches_scalar_queries() {
        let mut rng = StdRng::seed_from_u64(42);
        let assign = init::uniform(&mut rng, 5, 3, 1.0).map(|v| v.abs());
        let wc = init::uniform(&mut rng, 3, 3, 1.0);
        let cache = ItemRelationCache::build(assign, &wc);
        let col = cache.column(2);
        for (a, &v) in col.iter().enumerate() {
            assert!((v - cache.w_ab(a, 2)).abs() < 1e-12);
        }
    }

    #[test]
    fn acyclicity_penalty_positive_for_cyclic_init() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(43);
        let cg = ClusterCausalGraph::new(&mut ps, "cg", 3, &mut rng);
        // Force a strong 2-cycle.
        let mut w = Matrix::zeros(3, 3);
        w.set(0, 1, 1.0);
        w.set(1, 0, 1.0);
        ps.set_value(cg.wc, w);
        assert!(cg.acyclicity_value(&ps) > 0.5);
        let dag = cg.binarized(&ps, 0.5);
        assert!(!dag.is_dag());
    }

    #[test]
    fn total_effects_sum_path_products() {
        // Chain 0 →(0.5) 1 →(0.4) 2 plus direct 0 →(0.1) 2.
        let mut wc = Matrix::zeros(3, 3);
        wc.set(0, 1, 0.5);
        wc.set(1, 2, 0.4);
        wc.set(0, 2, 0.1);
        let t = total_effects(&wc);
        assert!((t.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((t.get(0, 2) - (0.1 + 0.5 * 0.4)).abs() < 1e-12, "direct + indirect");
        assert!((t.get(1, 2) - 0.4).abs() < 1e-12);
        assert_eq!(t.get(2, 0), 0.0);
    }

    #[test]
    fn effect_cache_groups_catalog_and_ranks_influencers() {
        let assign = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let mut wc = Matrix::zeros(2, 2);
        wc.set(0, 1, 0.9);
        let rel = ItemRelationCache::build(assign, &wc);
        let cache = ClusterEffectCache::build(&rel, &[0, 1, 0, 1], &wc);
        assert_eq!(cache.members, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(cache.member_assign[0].shape(), (2, 2));
        assert_eq!(cache.member_assign[0].row(0), rel.assignments.row(0));
        assert_eq!(cache.top_influencers(1, 3), vec![(0, 0.9)]);
        assert!(cache.top_influencers(0, 3).is_empty());
    }

    #[test]
    fn reachable_mass_follows_paths_and_weights_seeds() {
        // Chain 0 →(0.5) 1 →(0.4) 2 plus direct 0 →(0.1) 2; cluster 3 is an
        // isolated sink.
        let mut wc = Matrix::zeros(4, 4);
        wc.set(0, 1, 0.5);
        wc.set(1, 2, 0.4);
        wc.set(0, 2, 0.1);
        let assign = Matrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let rel = ItemRelationCache::build(assign, &wc);
        let cache = ClusterEffectCache::build(&rel, &[0, 1, 2, 3], &wc);

        // Seeding at 0: own mass = strongest outgoing (0.5), downstream mass
        // = |T[0,1]| and |T[0,2]| (direct + indirect), nothing at the sink.
        let mass = cache.reachable_mass(&[0], 1.0);
        assert!((mass[0] - 0.5).abs() < 1e-12);
        assert!((mass[1] - 0.5).abs() < 1e-12);
        assert!((mass[2] - (0.1 + 0.5 * 0.4)).abs() < 1e-12);
        assert_eq!(mass[3], 0.0);

        // Duplicate seeds accumulate; self_affinity scales only the own-mass
        // term.
        let twice = cache.reachable_mass(&[0, 0], 1.0);
        assert!((twice[1] - 2.0 * mass[1]).abs() < 1e-12);
        let no_self = cache.reachable_mass(&[0], 0.0);
        assert_eq!(no_self[0], 0.0);
        assert!((no_self[2] - mass[2]).abs() < 1e-12);

        // A sink seed has no outgoing effects: all-zero mass (the exact
        // fallback condition of the retrieval path). Out-of-range ignored.
        assert!(cache.reachable_mass(&[3], 1.0).iter().all(|&m| m == 0.0));
        assert!(cache.reachable_mass(&[9], 1.0).iter().all(|&m| m == 0.0));
    }

    #[test]
    fn l1_penalty_scales_with_lambda() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(44);
        let cg = ClusterCausalGraph::new(&mut ps, "cg", 3, &mut rng);
        let mut g = Graph::new();
        let p1 = cg.l1_penalty(&mut g, &ps, 1.0);
        let p2 = cg.l1_penalty(&mut g, &ps, 2.0);
        assert!((g.value(p2).item() - 2.0 * g.value(p1).item()).abs() < 1e-12);
    }
}
