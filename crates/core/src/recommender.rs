//! The shared recommender interface used by the Causer model, every
//! baseline, and the evaluation harness.

use causer_data::{EvalCase, LeaveLastOut};
use causer_metrics::{RankingAccumulator, RankingReport};
use causer_tensor::Matrix;
use std::collections::HashSet;

/// A sequential recommender that can be fit on a split and score the whole
/// catalog for an evaluation case.
pub trait SeqRecommender {
    /// Human-readable name used in result tables.
    fn name(&self) -> String;

    /// Fit on the training split.
    fn fit(&mut self, split: &LeaveLastOut);

    /// Score every item (higher = more likely next interaction).
    fn scores(&self, case: &EvalCase) -> Vec<f64>;
}

/// Evaluate a recommender over evaluation cases with top-`z` metrics,
/// optionally subsampling users (deterministically, by stride) to bound
/// wall-clock on the bigger datasets.
pub fn evaluate(
    model: &dyn SeqRecommender,
    cases: &[EvalCase],
    z: usize,
    max_users: usize,
) -> RankingReport {
    let mut acc = RankingAccumulator::new(z);
    let stride = (cases.len().div_ceil(max_users)).max(1);
    for case in cases.iter().step_by(stride) {
        let scores = model.scores(case);
        let rec = Matrix::top_k_indices(&scores, z);
        let truth: HashSet<usize> = case.target.iter().copied().collect();
        acc.add(&rec, &truth);
    }
    acc.report()
}

/// A non-personalized popularity recommender — the sanity floor every
/// learned model must beat.
#[derive(Default)]
pub struct PopRecommender {
    scores: Vec<f64>,
}

impl SeqRecommender for PopRecommender {
    fn name(&self) -> String {
        "Pop".to_string()
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        let mut counts = vec![0.0f64; split.num_items];
        for h in &split.train {
            for step in &h.steps {
                for &i in step {
                    counts[i] += 1.0;
                }
            }
        }
        self.scores = counts;
    }

    fn scores(&self, _case: &EvalCase) -> Vec<f64> {
        self.scores.clone()
    }
}

/// A uniformly random recommender (seeded per case for determinism).
pub struct RandomRecommender {
    pub seed: u64,
    num_items: usize,
}

impl RandomRecommender {
    pub fn new(seed: u64) -> Self {
        RandomRecommender { seed, num_items: 0 }
    }
}

impl SeqRecommender for RandomRecommender {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        self.num_items = split.num_items;
    }

    fn scores(&self, case: &EvalCase) -> Vec<f64> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(self.seed ^ (case.user as u64).wrapping_mul(0x9e37));
        (0..self.num_items).map(|_| rng.gen()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    fn split() -> LeaveLastOut {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.01);
        simulate(&profile, 21).interactions.leave_last_out()
    }

    #[test]
    fn pop_recommender_orders_by_frequency() {
        let s = split();
        let mut pop = PopRecommender::default();
        pop.fit(&s);
        let case = &s.test[0];
        let scores = pop.scores(case);
        assert_eq!(scores.len(), s.num_items);
        // The top item should be the global most-frequent item.
        let top = Matrix::top_k_indices(&scores, 1)[0];
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(scores[top], max);
    }

    #[test]
    fn evaluate_produces_bounded_metrics() {
        let s = split();
        let mut pop = PopRecommender::default();
        pop.fit(&s);
        let report = evaluate(&pop, &s.test, 5, usize::MAX);
        assert!(report.f1 >= 0.0 && report.f1 <= 1.0);
        assert!(report.ndcg >= 0.0 && report.ndcg <= 1.0);
        assert_eq!(report.num_users, s.test.len());
    }

    #[test]
    fn subsampling_reduces_user_count() {
        let s = split();
        let mut pop = PopRecommender::default();
        pop.fit(&s);
        let full = evaluate(&pop, &s.test, 5, usize::MAX);
        let sub = evaluate(&pop, &s.test, 5, 5);
        assert!(sub.num_users <= full.num_users);
        assert!(sub.num_users >= 1);
    }

    #[test]
    fn pop_beats_random_on_skewed_data() {
        let s = split();
        let mut pop = PopRecommender::default();
        pop.fit(&s);
        let mut random = RandomRecommender::new(5);
        random.fit(&s);
        let p = evaluate(&pop, &s.test, 5, usize::MAX);
        let r = evaluate(&random, &s.test, 5, usize::MAX);
        assert!(p.ndcg >= r.ndcg, "popularity ({}) should beat random ({})", p.ndcg, r.ndcg);
    }
}
