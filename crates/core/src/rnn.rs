//! GRU and LSTM cells, the two sequential architectures `g` the paper
//! implements Causer with (§III-B).
//!
//! Each cell exposes two forward paths:
//! - [`GruCell::step`] / [`LstmCell::step`]: autodiff-graph steps used in
//!   training;
//! - [`GruCell::step_plain`] / [`LstmCell::step_plain`]: allocation-light
//!   plain-matrix steps used at inference time, where no gradients are
//!   needed and the model scores the whole catalog.
//!
//! Tests verify that the two paths agree to machine precision.

use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::Rng;

/// Which recurrent architecture to use for `g`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RnnKind {
    Gru,
    Lstm,
}

impl RnnKind {
    pub fn name(&self) -> &'static str {
        match self {
            RnnKind::Gru => "GRU",
            RnnKind::Lstm => "LSTM",
        }
    }
}

/// Gated recurrent unit (Chung et al., 2014).
#[derive(Clone, Debug)]
pub struct GruCell {
    pub input_dim: usize,
    pub hidden_dim: usize,
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
}

impl GruCell {
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        prefix: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut w = |name: &str, r: usize, c: usize| {
            ps.add(&format!("{prefix}.{name}"), init::xavier(rng, r, c))
        };
        let wz = w("wz", input_dim, hidden_dim);
        let uz = w("uz", hidden_dim, hidden_dim);
        let wr = w("wr", input_dim, hidden_dim);
        let ur = w("ur", hidden_dim, hidden_dim);
        let wh = w("wh", input_dim, hidden_dim);
        let uh = w("uh", hidden_dim, hidden_dim);
        let bz = ps.add(&format!("{prefix}.bz"), Matrix::zeros(1, hidden_dim));
        let br = ps.add(&format!("{prefix}.br"), Matrix::zeros(1, hidden_dim));
        let bh = ps.add(&format!("{prefix}.bh"), Matrix::zeros(1, hidden_dim));
        GruCell { input_dim, hidden_dim, wz, uz, bz, wr, ur, br, wh, uh, bh }
    }

    /// One autodiff step: `x (B×in)`, `h (B×hidden)` → next hidden.
    pub fn step(&self, g: &mut Graph, ps: &ParamSet, x: NodeId, h: NodeId) -> NodeId {
        let (wz, uz, bz) = (g.param(ps, self.wz), g.param(ps, self.uz), g.param(ps, self.bz));
        let (wr, ur, br) = (g.param(ps, self.wr), g.param(ps, self.ur), g.param(ps, self.br));
        let (wh, uh, bh) = (g.param(ps, self.wh), g.param(ps, self.uh), g.param(ps, self.bh));

        let xz = g.matmul(x, wz);
        let hz = g.matmul(h, uz);
        let z_pre = g.add(xz, hz);
        let z_pre = g.add_row(z_pre, bz);
        let z = g.sigmoid(z_pre);

        let xr = g.matmul(x, wr);
        let hr = g.matmul(h, ur);
        let r_pre = g.add(xr, hr);
        let r_pre = g.add_row(r_pre, br);
        let r = g.sigmoid(r_pre);

        let rh = g.mul(r, h);
        let xh = g.matmul(x, wh);
        let rhu = g.matmul(rh, uh);
        let cand_pre = g.add(xh, rhu);
        let cand_pre = g.add_row(cand_pre, bh);
        let cand = g.tanh(cand_pre);

        // h' = (1 − z) ∘ h + z ∘ cand
        let zh = g.mul(z, cand);
        let neg_z = g.neg(z);
        let one_minus_z = g.add_scalar(neg_z, 1.0);
        let keep = g.mul(one_minus_z, h);
        g.add(keep, zh)
    }

    /// Plain-matrix forward step (inference path).
    pub fn step_plain(&self, ps: &ParamSet, x: &Matrix, h: &Matrix) -> Matrix {
        let affine = |w: ParamId, u: ParamId, b: ParamId, hv: &Matrix| {
            let mut m = x.matmul(ps.value(w));
            m.add_scaled(&hv.matmul(ps.value(u)), 1.0);
            let bias = ps.value(b);
            for i in 0..m.rows() {
                for (v, &bv) in m.row_mut(i).iter_mut().zip(bias.row(0)) {
                    *v += bv;
                }
            }
            m
        };
        let z = affine(self.wz, self.uz, self.bz, h).map(causer_tensor::stable_sigmoid);
        let r = affine(self.wr, self.ur, self.br, h).map(causer_tensor::stable_sigmoid);
        let rh = r.hadamard(h);
        let mut cand = x.matmul(ps.value(self.wh));
        cand.add_scaled(&rh.matmul(ps.value(self.uh)), 1.0);
        let bias = ps.value(self.bh);
        for i in 0..cand.rows() {
            for (v, &bv) in cand.row_mut(i).iter_mut().zip(bias.row(0)) {
                *v += bv;
            }
        }
        let cand = cand.map(f64::tanh);
        z.zip_map(h, |zi, hi| (1.0 - zi) * hi).add(&z.hadamard(&cand))
    }

    /// Allocation-free twin of [`GruCell::step_plain`]: advances `h` in
    /// place (via buffer swap with `scratch`), performing the exact same
    /// scalar operation sequence so the new hidden state is bitwise-equal
    /// to the allocating path.
    pub fn step_plain_into(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        h: &mut Matrix,
        scratch: &mut StepScratch,
    ) {
        affine_into(ps, x, h, (self.wz, self.uz, self.bz), &mut scratch.g1, &mut scratch.tmp);
        scratch.g1.map_inplace(causer_tensor::stable_sigmoid); // z
        affine_into(ps, x, h, (self.wr, self.ur, self.br), &mut scratch.g2, &mut scratch.tmp);
        scratch.g2.map_inplace(causer_tensor::stable_sigmoid); // r
        hadamard_into(&scratch.g2, h, &mut scratch.g3); // rh
        x.matmul_into(ps.value(self.wh), &mut scratch.g4);
        scratch.g3.matmul_into(ps.value(self.uh), &mut scratch.tmp);
        scratch.g4.add_scaled(&scratch.tmp, 1.0);
        add_bias_row(&mut scratch.g4, ps.value(self.bh));
        scratch.g4.map_inplace(f64::tanh); // cand
                                           // h' = ((1 − z) ∘ h) + (z ∘ cand), in the same association as the
                                           // allocating path's zip_map + hadamard + add.
        scratch.h_new.reset_to(h.rows(), h.cols());
        for (((o, &zi), &hi), &ci) in scratch
            .h_new
            .data_mut()
            .iter_mut()
            .zip(scratch.g1.data())
            .zip(h.data())
            .zip(scratch.g4.data())
        {
            *o = ((1.0 - zi) * hi) + (zi * ci);
        }
        std::mem::swap(h, &mut scratch.h_new);
    }
}

/// Long short-term memory (Hochreiter & Schmidhuber, 1997).
#[derive(Clone, Debug)]
pub struct LstmCell {
    pub input_dim: usize,
    pub hidden_dim: usize,
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wc: ParamId,
    uc: ParamId,
    bc: ParamId,
}

impl LstmCell {
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        prefix: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mut w = |name: &str, r: usize, c: usize| {
            ps.add(&format!("{prefix}.{name}"), init::xavier(rng, r, c))
        };
        let wi = w("wi", input_dim, hidden_dim);
        let ui = w("ui", hidden_dim, hidden_dim);
        let wf = w("wf", input_dim, hidden_dim);
        let uf = w("uf", hidden_dim, hidden_dim);
        let wo = w("wo", input_dim, hidden_dim);
        let uo = w("uo", hidden_dim, hidden_dim);
        let wc = w("wc", input_dim, hidden_dim);
        let uc = w("uc", hidden_dim, hidden_dim);
        let bi = ps.add(&format!("{prefix}.bi"), Matrix::zeros(1, hidden_dim));
        // Forget-gate bias starts at 1 (standard trick for gradient flow).
        let bf = ps.add(&format!("{prefix}.bf"), Matrix::ones(1, hidden_dim));
        let bo = ps.add(&format!("{prefix}.bo"), Matrix::zeros(1, hidden_dim));
        let bc = ps.add(&format!("{prefix}.bc"), Matrix::zeros(1, hidden_dim));
        LstmCell { input_dim, hidden_dim, wi, ui, bi, wf, uf, bf, wo, uo, bo, wc, uc, bc }
    }

    /// One autodiff step: returns `(h', c')`.
    pub fn step(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: NodeId,
        h: NodeId,
        c: NodeId,
    ) -> (NodeId, NodeId) {
        let gate = |g: &mut Graph, w: ParamId, u: ParamId, b: ParamId| {
            let wn = g.param(ps, w);
            let un = g.param(ps, u);
            let bn = g.param(ps, b);
            let xw = g.matmul(x, wn);
            let hu = g.matmul(h, un);
            let s = g.add(xw, hu);
            g.add_row(s, bn)
        };
        let i_pre = gate(g, self.wi, self.ui, self.bi);
        let i = g.sigmoid(i_pre);
        let f_pre = gate(g, self.wf, self.uf, self.bf);
        let f = g.sigmoid(f_pre);
        let o_pre = gate(g, self.wo, self.uo, self.bo);
        let o = g.sigmoid(o_pre);
        let cand_pre = gate(g, self.wc, self.uc, self.bc);
        let cand = g.tanh(cand_pre);
        let fc = g.mul(f, c);
        let ic = g.mul(i, cand);
        let c_next = g.add(fc, ic);
        let tc = g.tanh(c_next);
        let h_next = g.mul(o, tc);
        (h_next, c_next)
    }

    /// Plain-matrix forward step (inference path).
    pub fn step_plain(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        h: &Matrix,
        c: &Matrix,
    ) -> (Matrix, Matrix) {
        let gate = |w: ParamId, u: ParamId, b: ParamId| {
            let mut m = x.matmul(ps.value(w));
            m.add_scaled(&h.matmul(ps.value(u)), 1.0);
            let bias = ps.value(b);
            for i in 0..m.rows() {
                for (v, &bv) in m.row_mut(i).iter_mut().zip(bias.row(0)) {
                    *v += bv;
                }
            }
            m
        };
        let i = gate(self.wi, self.ui, self.bi).map(causer_tensor::stable_sigmoid);
        let f = gate(self.wf, self.uf, self.bf).map(causer_tensor::stable_sigmoid);
        let o = gate(self.wo, self.uo, self.bo).map(causer_tensor::stable_sigmoid);
        let cand = gate(self.wc, self.uc, self.bc).map(f64::tanh);
        let c_next = f.hadamard(c).add(&i.hadamard(&cand));
        let h_next = o.hadamard(&c_next.map(f64::tanh));
        (h_next, c_next)
    }

    /// Allocation-free twin of [`LstmCell::step_plain`]: advances `h`/`c`
    /// in place (buffer swap with `scratch`), same scalar operation
    /// sequence, bitwise-equal results.
    pub fn step_plain_into(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        h: &mut Matrix,
        c: &mut Matrix,
        scratch: &mut StepScratch,
    ) {
        affine_into(ps, x, h, (self.wi, self.ui, self.bi), &mut scratch.g1, &mut scratch.tmp);
        scratch.g1.map_inplace(causer_tensor::stable_sigmoid); // i
        affine_into(ps, x, h, (self.wf, self.uf, self.bf), &mut scratch.g2, &mut scratch.tmp);
        scratch.g2.map_inplace(causer_tensor::stable_sigmoid); // f
        affine_into(ps, x, h, (self.wo, self.uo, self.bo), &mut scratch.g3, &mut scratch.tmp);
        scratch.g3.map_inplace(causer_tensor::stable_sigmoid); // o
        affine_into(ps, x, h, (self.wc, self.uc, self.bc), &mut scratch.g4, &mut scratch.tmp);
        scratch.g4.map_inplace(f64::tanh); // cand
                                           // c' = (f ∘ c) + (i ∘ cand), same association as hadamard + add.
        scratch.c_new.reset_to(c.rows(), c.cols());
        for ((((o, &fi), &ci), &ii), &gi) in scratch
            .c_new
            .data_mut()
            .iter_mut()
            .zip(scratch.g2.data())
            .zip(c.data())
            .zip(scratch.g1.data())
            .zip(scratch.g4.data())
        {
            *o = (fi * ci) + (ii * gi);
        }
        // h' = o ∘ tanh(c').
        scratch.h_new.reset_to(h.rows(), h.cols());
        for ((o, &oi), &ci) in
            scratch.h_new.data_mut().iter_mut().zip(scratch.g3.data()).zip(scratch.c_new.data())
        {
            *o = oi * ci.tanh();
        }
        std::mem::swap(c, &mut scratch.c_new);
        std::mem::swap(h, &mut scratch.h_new);
    }
}

/// Shared gate pre-activation: `out = x·W + hv·U + b` with the hidden-side
/// product staged through `tmp`. Mirrors the allocating closures inside the
/// `step_plain` paths operation-for-operation (matmul kernels, `axpy` with
/// `alpha = 1.0`, row-bias add), so the result is bitwise-equal.
fn affine_into(
    ps: &ParamSet,
    x: &Matrix,
    hv: &Matrix,
    (w, u, b): (ParamId, ParamId, ParamId),
    out: &mut Matrix,
    tmp: &mut Matrix,
) {
    x.matmul_into(ps.value(w), out);
    hv.matmul_into(ps.value(u), tmp);
    out.add_scaled(tmp, 1.0);
    add_bias_row(out, ps.value(b));
}

fn add_bias_row(m: &mut Matrix, bias: &Matrix) {
    for i in 0..m.rows() {
        for (v, &bv) in m.row_mut(i).iter_mut().zip(bias.row(0)) {
            *v += bv;
        }
    }
}

fn hadamard_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.shape(), b.shape(), "hadamard_into shape mismatch");
    out.reset_to(a.rows(), a.cols());
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = x * y;
    }
}

/// Reusable scratch for the `step_plain_into` paths: four gate buffers, a
/// staging buffer for the hidden-side matmul, and swap targets for the new
/// hidden/carry state. One per scoring worker; every buffer keeps its
/// capacity across steps so the steady state performs no heap allocation.
#[derive(Default)]
pub struct StepScratch {
    g1: Matrix,
    g2: Matrix,
    g3: Matrix,
    g4: Matrix,
    tmp: Matrix,
    h_new: Matrix,
    c_new: Matrix,
}

/// A unified recurrent cell over [`RnnKind`].
#[derive(Clone, Debug)]
pub enum Cell {
    Gru(GruCell),
    Lstm(LstmCell),
}

/// Recurrent state: hidden (and cell state for LSTM) node ids.
#[derive(Clone, Copy, Debug)]
pub struct State {
    pub h: NodeId,
    pub c: Option<NodeId>,
}

/// Plain-matrix recurrent state.
#[derive(Clone, Debug)]
pub struct PlainState {
    pub h: Matrix,
    pub c: Option<Matrix>,
}

impl PlainState {
    /// Scalars held by this state: the hidden vector plus, for LSTM, the
    /// carry `c`. This is the unit the serving-side user-state store counts
    /// against its memory budget, so it must cover *every* matrix a state
    /// keeps alive.
    pub fn num_scalars(&self) -> usize {
        self.h.len() + self.c.as_ref().map_or(0, |c| c.len())
    }
}

impl Cell {
    pub fn new<R: Rng + ?Sized>(
        kind: RnnKind,
        ps: &mut ParamSet,
        prefix: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        match kind {
            RnnKind::Gru => Cell::Gru(GruCell::new(ps, prefix, input_dim, hidden_dim, rng)),
            RnnKind::Lstm => Cell::Lstm(LstmCell::new(ps, prefix, input_dim, hidden_dim, rng)),
        }
    }

    pub fn hidden_dim(&self) -> usize {
        match self {
            Cell::Gru(c) => c.hidden_dim,
            Cell::Lstm(c) => c.hidden_dim,
        }
    }

    pub fn input_dim(&self) -> usize {
        match self {
            Cell::Gru(c) => c.input_dim,
            Cell::Lstm(c) => c.input_dim,
        }
    }

    /// Zero initial state for a batch of size `batch`.
    pub fn init_state(&self, g: &mut Graph, batch: usize) -> State {
        let h = g.constant(Matrix::zeros(batch, self.hidden_dim()));
        let c = match self {
            Cell::Gru(_) => None,
            Cell::Lstm(_) => Some(g.constant(Matrix::zeros(batch, self.hidden_dim()))),
        };
        State { h, c }
    }

    pub fn init_plain_state(&self, batch: usize) -> PlainState {
        PlainState {
            h: Matrix::zeros(batch, self.hidden_dim()),
            c: match self {
                Cell::Gru(_) => None,
                Cell::Lstm(_) => Some(Matrix::zeros(batch, self.hidden_dim())),
            },
        }
    }

    pub fn step(&self, g: &mut Graph, ps: &ParamSet, x: NodeId, state: &State) -> State {
        match self {
            Cell::Gru(c) => State { h: c.step(g, ps, x, state.h), c: None },
            Cell::Lstm(c) => {
                let (h, cc) = c.step(g, ps, x, state.h, state.c.expect("LSTM state"));
                State { h, c: Some(cc) }
            }
        }
    }

    pub fn step_plain(&self, ps: &ParamSet, x: &Matrix, state: &PlainState) -> PlainState {
        match self {
            Cell::Gru(c) => PlainState { h: c.step_plain(ps, x, &state.h), c: None },
            Cell::Lstm(c) => {
                let (h, cc) = c.step_plain(ps, x, &state.h, state.c.as_ref().expect("LSTM state"));
                PlainState { h, c: Some(cc) }
            }
        }
    }

    /// Allocation-free twin of [`Cell::step_plain`]: advances `state` in
    /// place through `scratch`, bitwise-equal to the allocating path.
    pub fn step_plain_into(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        state: &mut PlainState,
        scratch: &mut StepScratch,
    ) {
        match self {
            Cell::Gru(c) => c.step_plain_into(ps, x, &mut state.h, scratch),
            Cell::Lstm(c) => c.step_plain_into(
                ps,
                x,
                &mut state.h,
                state.c.as_mut().expect("LSTM state"),
                scratch,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::{gradcheck, GradStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn gru_graph_and_plain_agree() {
        let mut r = rng();
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, "gru", 3, 5, &mut r);
        let x = init::uniform(&mut r, 2, 3, 1.0);
        let h0 = init::uniform(&mut r, 2, 5, 1.0);
        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let hn = g.constant(h0.clone());
        let out = cell.step(&mut g, &ps, xn, hn);
        let plain = cell.step_plain(&ps, &x, &h0);
        for (a, b) in g.value(out).data().iter().zip(plain.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lstm_graph_and_plain_agree() {
        let mut r = rng();
        let mut ps = ParamSet::new();
        let cell = LstmCell::new(&mut ps, "lstm", 4, 6, &mut r);
        let x = init::uniform(&mut r, 1, 4, 1.0);
        let h0 = init::uniform(&mut r, 1, 6, 1.0);
        let c0 = init::uniform(&mut r, 1, 6, 1.0);
        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let hn = g.constant(h0.clone());
        let cn = g.constant(c0.clone());
        let (h1, c1) = cell.step(&mut g, &ps, xn, hn, cn);
        let (ph, pc) = cell.step_plain(&ps, &x, &h0, &c0);
        for (a, b) in g.value(h1).data().iter().zip(ph.data()) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in g.value(c1).data().iter().zip(pc.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn step_plain_into_is_bitwise_equal_for_both_kinds() {
        let mut r = rng();
        let mut ps = ParamSet::new();
        for kind in [RnnKind::Gru, RnnKind::Lstm] {
            let cell = Cell::new(kind, &mut ps, kind.name(), 3, 5, &mut r);
            let mut scratch = StepScratch::default();
            let mut state = cell.init_plain_state(1);
            let mut expect = cell.init_plain_state(1);
            for _ in 0..6 {
                let x = init::uniform(&mut r, 1, 3, 1.0);
                expect = cell.step_plain(&ps, &x, &expect);
                cell.step_plain_into(&ps, &x, &mut state, &mut scratch);
                for (a, b) in expect.h.data().iter().zip(state.h.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} hidden state drifted", kind.name());
                }
                if let (Some(ec), Some(sc)) = (expect.c.as_ref(), state.c.as_ref()) {
                    for (a, b) in ec.data().iter().zip(sc.data()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "LSTM carry drifted");
                    }
                }
            }
        }
    }

    #[test]
    fn gru_gradients_check_out() {
        let mut r = rng();
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, "gru", 2, 3, &mut r);
        let x = init::uniform(&mut r, 1, 2, 1.0);
        gradcheck::check_gradients(&mut ps, 1e-4, |g, ps| {
            let xn = g.constant(x.clone());
            let h0 = g.constant(Matrix::zeros(1, 3));
            let h1 = cell.step(g, ps, xn, h0);
            let h2 = cell.step(g, ps, xn, h1);
            let sq = g.mul(h2, h2);
            g.sum_all(sq)
        });
    }

    #[test]
    fn lstm_gradients_check_out() {
        let mut r = rng();
        let mut ps = ParamSet::new();
        let cell = Cell::new(RnnKind::Lstm, &mut ps, "lstm", 2, 3, &mut r);
        let x = init::uniform(&mut r, 1, 2, 1.0);
        gradcheck::check_gradients(&mut ps, 1e-4, |g, ps| {
            let xn = g.constant(x.clone());
            let s0 = cell.init_state(g, 1);
            let s1 = cell.step(g, ps, xn, &s0);
            let s2 = cell.step(g, ps, xn, &s1);
            let sq = g.mul(s2.h, s2.h);
            g.sum_all(sq)
        });
    }

    #[test]
    fn plain_state_scalar_count_covers_the_carry() {
        let mut r = rng();
        let mut ps = ParamSet::new();
        let gru = Cell::new(RnnKind::Gru, &mut ps, "g", 2, 4, &mut r);
        let lstm = Cell::new(RnnKind::Lstm, &mut ps, "l", 2, 4, &mut r);
        assert_eq!(gru.init_plain_state(1).num_scalars(), 4);
        assert_eq!(lstm.init_plain_state(1).num_scalars(), 8, "LSTM must count h and c");
    }

    #[test]
    fn state_propagates_information() {
        // Feeding different inputs must produce different hidden states.
        let mut r = rng();
        let mut ps = ParamSet::new();
        let cell = Cell::new(RnnKind::Gru, &mut ps, "g", 2, 4, &mut r);
        let run = |x_val: f64, ps: &ParamSet| -> Matrix {
            let mut g = Graph::new();
            let x = g.constant(Matrix::full(1, 2, x_val));
            let s0 = cell.init_state(&mut g, 1);
            let s1 = cell.step(&mut g, ps, x, &s0);
            g.value(s1.h).clone()
        };
        let a = run(0.5, &ps);
        let b = run(-0.5, &ps);
        assert!(a.sub(&b).max_abs() > 1e-6);
    }

    #[test]
    fn training_reduces_loss_through_rnn() {
        // Tiny seq2one task: predict sign of the input sum.
        use causer_tensor::{Adam, Optimizer};
        let mut r = rng();
        let mut ps = ParamSet::new();
        let cell = Cell::new(RnnKind::Gru, &mut ps, "g", 1, 4, &mut r);
        let wout = ps.add("wout", init::xavier(&mut r, 4, 1));
        let seqs: Vec<(Vec<f64>, f64)> = vec![
            (vec![1.0, 1.0, 1.0], 1.0),
            (vec![-1.0, -1.0, -1.0], 0.0),
            (vec![1.0, 1.0, -0.2], 1.0),
            (vec![-1.0, 0.2, -1.0], 0.0),
        ];
        let mut opt = Adam::new(0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut g = Graph::new();
            let mut total = None;
            for (xs, t) in &seqs {
                let mut state = cell.init_state(&mut g, 1);
                for &x in xs {
                    let xn = g.constant(Matrix::scalar(x));
                    state = cell.step(&mut g, &ps, xn, &state);
                }
                let w = g.param(&ps, wout);
                let logit = g.matmul(state.h, w);
                let loss = g.bce_with_logits(logit, &Matrix::scalar(*t));
                total = Some(match total {
                    None => loss,
                    Some(acc) => g.add(acc, loss),
                });
            }
            let loss = total.unwrap();
            last = g.value(loss).item();
            first.get_or_insert(last);
            let mut gs = GradStore::new(&ps);
            g.backward(loss, &mut gs);
            opt.step(&mut ps, &mut gs);
        }
        assert!(last < first.unwrap() * 0.3, "loss {last} vs {}", first.unwrap());
    }
}
