//! The encoder–decoder item clustering of §III-A (eqs. 6–8).
//!
//! Each item's raw features `ṽ ∈ R^d` are encoded into an embedding
//! `v* = V₂ σ(V₁ ṽ + b₁) + b₂` (eq. 6); a free parameter matrix `a` defines
//! per-item soft cluster assignments `v̄ = softmax(a / η)` over `K` latent
//! cluster centers `m_k` (eq. 7, the temperature relaxation); a decoder
//! reconstructs the raw features (eq. 8). Two auxiliary losses pull item
//! embeddings toward convex combinations of the cluster centers and keep
//! them informative of the raw features.

use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::Rng;

/// The cluster module's parameters (the paper's `Θ_a`).
#[derive(Clone, Debug)]
pub struct ClusterModule {
    pub num_items: usize,
    pub feature_dim: usize,
    pub d1: usize,
    /// Embedding dimensionality `d2` — also the item input embedding size.
    pub d2: usize,
    pub k: usize,
    /// Softmax temperature η.
    pub eta: f64,
    v1: ParamId,
    b1: ParamId,
    v2: ParamId,
    b2: ParamId,
    v3: ParamId,
    b3: ParamId,
    v4: ParamId,
    b4: ParamId,
    /// Cluster centers `m_k`, stacked `K × d2`.
    centers: ParamId,
    /// Free assignment logits `a`, one row per item (`|V| × K`).
    logits: ParamId,
}

impl ClusterModule {
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        prefix: &str,
        num_items: usize,
        feature_dim: usize,
        d1: usize,
        d2: usize,
        k: usize,
        eta: f64,
        rng: &mut R,
    ) -> Self {
        assert!(k >= 2, "need at least two clusters");
        assert!(eta > 0.0, "temperature must be positive");
        let v1 = ps.add(&format!("{prefix}.V1"), init::xavier(rng, feature_dim, d1));
        let b1 = ps.add(&format!("{prefix}.b1"), Matrix::zeros(1, d1));
        let v2 = ps.add(&format!("{prefix}.V2"), init::xavier(rng, d1, d2));
        let b2 = ps.add(&format!("{prefix}.b2"), Matrix::zeros(1, d2));
        let v3 = ps.add(&format!("{prefix}.V3"), init::xavier(rng, d2, d1));
        let b3 = ps.add(&format!("{prefix}.b3"), Matrix::zeros(1, d1));
        let v4 = ps.add(&format!("{prefix}.V4"), init::xavier(rng, d1, feature_dim));
        let b4 = ps.add(&format!("{prefix}.b4"), Matrix::zeros(1, feature_dim));
        let centers = ps.add(&format!("{prefix}.centers"), init::normal(rng, k, d2, 0.5));
        let logits = ps.add(&format!("{prefix}.logits"), init::uniform(rng, num_items, k, 0.1));
        ClusterModule {
            num_items,
            feature_dim,
            d1,
            d2,
            k,
            eta,
            v1,
            b1,
            v2,
            b2,
            v3,
            b3,
            v4,
            b4,
            centers,
            logits,
        }
    }

    /// Eq. (6): encode raw features (`|V| × d`) into embeddings (`|V| × d2`).
    pub fn encode(&self, g: &mut Graph, ps: &ParamSet, features: NodeId) -> NodeId {
        let v1 = g.param(ps, self.v1);
        let b1 = g.param(ps, self.b1);
        let v2 = g.param(ps, self.v2);
        let b2 = g.param(ps, self.b2);
        let h = g.matmul(features, v1);
        let h = g.add_row(h, b1);
        let h = g.sigmoid(h);
        let e = g.matmul(h, v2);
        g.add_row(e, b2)
    }

    /// Plain-matrix encoder for inference.
    pub fn encode_plain(&self, ps: &ParamSet, features: &Matrix) -> Matrix {
        let mut h = features.matmul(ps.value(self.v1));
        add_row_inplace(&mut h, ps.value(self.b1));
        let h = h.map(causer_tensor::stable_sigmoid);
        let mut e = h.matmul(ps.value(self.v2));
        add_row_inplace(&mut e, ps.value(self.b2));
        e
    }

    /// Eq. (8) decoder: reconstruct raw features from embeddings.
    pub fn decode(&self, g: &mut Graph, ps: &ParamSet, embeddings: NodeId) -> NodeId {
        let v3 = g.param(ps, self.v3);
        let b3 = g.param(ps, self.b3);
        let v4 = g.param(ps, self.v4);
        let b4 = g.param(ps, self.b4);
        let h = g.matmul(embeddings, v3);
        let h = g.add_row(h, b3);
        let h = g.sigmoid(h);
        let r = g.matmul(h, v4);
        g.add_row(r, b4)
    }

    /// Eq. (7) relaxation: soft cluster assignments `softmax(a / η)`,
    /// `|V| × K`, rows on the simplex.
    pub fn assignments(&self, g: &mut Graph, ps: &ParamSet) -> NodeId {
        let a = g.param(ps, self.logits);
        let scaled = g.scale(a, 1.0 / self.eta);
        g.softmax_rows(scaled)
    }

    /// Plain-matrix assignments for inference/mask computation.
    pub fn assignments_plain(&self, ps: &ParamSet) -> Matrix {
        let a = ps.value(self.logits);
        let mut out = Matrix::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            let scaled: Vec<f64> = a.row(i).iter().map(|&v| v / self.eta).collect();
            let sm = crate::attention::softmax(&scaled);
            out.row_mut(i).copy_from_slice(&sm);
        }
        out
    }

    /// Eq. (7) objective: `Σ_v ||v* − Σ_k v̄_k m_k||²` (mean over items).
    pub fn clustering_loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        embeddings: NodeId,
        assignments: NodeId,
    ) -> NodeId {
        let m = g.param(ps, self.centers);
        let recon = g.matmul(assignments, m); // |V| × d2
        let diff = g.sub(embeddings, recon);
        let sq = g.mul(diff, diff);
        g.mean_all(sq)
    }

    /// Eq. (8) objective: `Σ_v ||v̂ − ṽ||²` (mean over items).
    pub fn reconstruction_loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        embeddings: NodeId,
        features: &Matrix,
    ) -> NodeId {
        let decoded = self.decode(g, ps, embeddings);
        g.mse_loss(decoded, features)
    }

    /// Hard cluster of every item (argmax of assignment logits).
    pub fn hard_clusters(&self, ps: &ParamSet) -> Vec<usize> {
        let a = ps.value(self.logits);
        (0..a.rows())
            .map(|i| {
                a.row(i)
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(k, _)| k)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Broadcast-add a `1×n` row to every row of `m` (shared plain-matrix helper).
pub fn add_row_inplace(m: &mut Matrix, row: &Matrix) {
    for i in 0..m.rows() {
        for (v, &b) in m.row_mut(i).iter_mut().zip(row.row(0)) {
            *v += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::{gradcheck, GradStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn module(eta: f64) -> (ParamSet, ClusterModule, Matrix) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ps = ParamSet::new();
        let m = ClusterModule::new(&mut ps, "clu", 6, 4, 5, 3, 3, eta, &mut rng);
        let features = init::uniform(&mut rng, 6, 4, 1.0);
        (ps, m, features)
    }

    #[test]
    fn assignment_rows_are_simplex() {
        let (ps, m, _) = module(1.0);
        let a = m.assignments_plain(&ps);
        assert_eq!(a.shape(), (6, 3));
        for i in 0..6 {
            let s: f64 = a.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(a.row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn small_temperature_hardens_assignments() {
        let (ps, mut m, _) = module(1.0);
        let soft = m.assignments_plain(&ps);
        m.eta = 1e-6;
        let hard = m.assignments_plain(&ps);
        let max_soft = soft.row(0).iter().cloned().fold(0.0, f64::max);
        let max_hard = hard.row(0).iter().cloned().fold(0.0, f64::max);
        assert!(max_hard > 0.999, "hard max {max_hard}");
        assert!(max_hard >= max_soft);
    }

    #[test]
    fn encode_graph_matches_plain() {
        let (ps, m, features) = module(1.0);
        let mut g = Graph::new();
        let f = g.constant(features.clone());
        let e = m.encode(&mut g, &ps, f);
        let plain = m.encode_plain(&ps, &features);
        for (a, b) in g.value(e).data().iter().zip(plain.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn losses_gradcheck() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut ps = ParamSet::new();
        let m = ClusterModule::new(&mut ps, "clu", 4, 3, 4, 2, 2, 0.7, &mut rng);
        let features = init::uniform(&mut rng, 4, 3, 1.0);
        gradcheck::check_gradients(&mut ps, 2e-4, |g, ps| {
            let f = g.constant(features.clone());
            let e = m.encode(g, ps, f);
            let a = m.assignments(g, ps);
            let lc = m.clustering_loss(g, ps, e, a);
            let lr = m.reconstruction_loss(g, ps, e, &features);
            g.add(lc, lr)
        });
    }

    #[test]
    fn joint_training_recovers_planted_clusters() {
        // Items 0..10 near center A, 10..20 near center B: after training the
        // clustering objective, hard assignments should separate them.
        use causer_tensor::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(33);
        let n = 20;
        let features = Matrix::from_fn(n, 4, |i, j| {
            let base = if i < 10 { 1.5 } else { -1.5 };
            base + 0.2 * ((i * 4 + j) as f64).sin()
        });
        let mut ps = ParamSet::new();
        let m = ClusterModule::new(&mut ps, "clu", n, 4, 6, 3, 2, 0.5, &mut rng);
        let mut opt = Adam::new(0.05);
        for _ in 0..150 {
            let mut g = Graph::new();
            let f = g.constant(features.clone());
            let e = m.encode(&mut g, &ps, f);
            let a = m.assignments(&mut g, &ps);
            let lc = m.clustering_loss(&mut g, &ps, e, a);
            let lr = m.reconstruction_loss(&mut g, &ps, e, &features);
            let loss = g.add(lc, lr);
            let mut gs = GradStore::new(&ps);
            g.backward(loss, &mut gs);
            opt.step(&mut ps, &mut gs);
        }
        let hard = m.hard_clusters(&ps);
        // All of group 1 same label, all of group 2 the other.
        let first = &hard[..10];
        let second = &hard[10..];
        let first_mode = first[0];
        assert!(first.iter().filter(|&&c| c == first_mode).count() >= 9, "{hard:?}");
        let second_mode = second[0];
        assert!(second.iter().filter(|&&c| c == second_mode).count() >= 9, "{hard:?}");
        assert_ne!(first_mode, second_mode, "{hard:?}");
    }
}
