//! Property tests for the Causer model's invariants.

use causer_core::{CauserConfig, CauserModel, CauserVariant, RnnKind};
use causer_tensor::{init, GradStore, Graph, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

type ModelSpec = (usize, usize, usize, bool, u64);

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    (2usize..6, 8usize..20, 2usize..5, prop::bool::ANY, 0u64..1000)
}

fn build(spec: ModelSpec) -> (CauserModel, u64) {
    let (k, items, users, gru, seed) = spec;
    let mut cfg = CauserConfig::new(users, items, 5);
    cfg.k = k;
    cfg.d1 = 6;
    cfg.d2 = 5;
    cfg.user_dim = 3;
    cfg.hidden_dim = 6;
    cfg.item_out_dim = 5;
    cfg.rnn = if gru { RnnKind::Gru } else { RnnKind::Lstm };
    let mut rng = StdRng::seed_from_u64(seed);
    let features = init::uniform(&mut rng, items, 5, 1.0);
    (CauserModel::new(cfg, features, seed), seed)
}

fn history_strategy(num_items: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..num_items, 1..3)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn score_all_is_finite_and_full_length(spec in model_strategy()) {
        let (model, seed) = build(spec);
        let ic = model.inference_cache();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let history: Vec<Vec<usize>> = (0..3)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, 0..model.config.num_items)])
            .collect();
        let scores = model.score_all(&ic, 0, &history);
        prop_assert_eq!(scores.len(), model.config.num_items);
        prop_assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn filter_is_monotone_in_epsilon(spec in model_strategy()) {
        let (mut model, seed) = build(spec);
        let cache = model.relation_cache();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let history: Vec<Vec<usize>> = (0..3)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, 0..model.config.num_items)])
            .collect();
        let b = rand::Rng::gen_range(&mut rng, 0..model.config.num_items);
        model.config.epsilon = 0.0;
        let loose = model.filter_history(&cache, &history, b);
        model.config.epsilon = 0.2;
        let tight = model.filter_history(&cache, &history, b);
        for (l, t) in loose.iter().zip(tight.iter()) {
            // Tight filter keeps a subset of the loose filter.
            prop_assert!(t.iter().all(|x| l.contains(x)));
        }
    }

    #[test]
    fn sequence_logits_one_per_candidate(spec in model_strategy()) {
        let (model, seed) = build(spec);
        let cache = model.relation_cache();
        let mut g = Graph::new();
        let shared = model.shared_nodes(&mut g);
        let n = model.config.num_items;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let steps: Vec<Vec<usize>> = (0..4)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, 0..n)])
            .collect();
        let negatives = vec![vec![1 % n, (2 + 3) % n]; 2];
        let logits = model.sequence_logits(&mut g, &shared, &cache, 0, &steps, &[1, 3], &negatives);
        // Positives: 1 per target step; negatives: 2 each.
        prop_assert_eq!(logits.len(), 2 * (1 + 2));
        // Loss must be buildable and back-propagable.
        let loss = model.bce_from_logits(&mut g, &logits).unwrap();
        let mut gs = GradStore::new(&model.params);
        g.backward(loss, &mut gs);
        prop_assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn explanation_scores_nonnegative_full(
        spec in model_strategy(),
        hist in history_strategy(8),
    ) {
        let (model, seed) = build(spec);
        prop_assume!(model.config.variant == CauserVariant::Full);
        let ic = model.inference_cache();
        let items: Vec<usize> = hist.iter().map(|s| s[0] % model.config.num_items).collect();
        let target = (seed as usize) % model.config.num_items;
        let scores = model.explanation_scores(&ic, 0, &items, target);
        prop_assert_eq!(scores.len(), items.len());
        prop_assert!(scores.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relation_cache_consistent_with_eq9(spec in model_strategy()) {
        let (model, _seed) = build(spec);
        let cache = model.relation_cache();
        let assign = model.cluster.assignments_plain(&model.params);
        let wc = model.causal.value(&model.params);
        let n = model.config.num_items;
        // Spot-check a few pairs against the explicit triple product.
        for (a, b) in [(0usize, 1usize), (n - 1, 0), (n / 2, n - 1)] {
            let mut expected = 0.0;
            for i in 0..model.config.k {
                for j in 0..model.config.k {
                    expected += assign.get(a, i) * wc.get(i, j) * assign.get(b, j);
                }
            }
            prop_assert!((cache.w_ab(a, b) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn assignments_rows_sum_to_one(spec in model_strategy()) {
        let (model, _seed) = build(spec);
        let a = model.cluster.assignments_plain(&model.params);
        for i in 0..a.rows() {
            let s: f64 = a.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(a.row(i).iter().all(|&v| v >= 0.0));
        }
    }
}

#[test]
fn variants_differ_only_where_expected() {
    // The -causal variant must ignore the relation cache entirely.
    let mut cfg = CauserConfig::new(3, 10, 5);
    cfg.k = 3;
    cfg.d1 = 6;
    cfg.d2 = 5;
    cfg.user_dim = 3;
    cfg.hidden_dim = 6;
    cfg.item_out_dim = 5;
    cfg.variant = CauserVariant::NoCausal;
    let mut rng = StdRng::seed_from_u64(7);
    let features = init::uniform(&mut rng, 10, 5, 1.0);
    let model = CauserModel::new(cfg, features, 7);
    let cache = model.relation_cache();
    let history = vec![vec![0usize], vec![5]];
    assert_eq!(model.filter_history(&cache, &history, 3), history);
    let _ = Matrix::zeros(1, 1);
}
