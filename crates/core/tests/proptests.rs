//! Property tests for the Causer model's invariants.

use causer_core::{CauserConfig, CauserModel, CauserVariant, RnnKind};
use causer_tensor::{init, GradStore, Graph, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

type ModelSpec = (usize, usize, usize, bool, u64);

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    (2usize..6, 8usize..20, 2usize..5, prop::bool::ANY, 0u64..1000)
}

fn build(spec: ModelSpec) -> (CauserModel, u64) {
    let (k, items, users, gru, seed) = spec;
    let mut cfg = CauserConfig::new(users, items, 5);
    cfg.k = k;
    cfg.d1 = 6;
    cfg.d2 = 5;
    cfg.user_dim = 3;
    cfg.hidden_dim = 6;
    cfg.item_out_dim = 5;
    cfg.rnn = if gru { RnnKind::Gru } else { RnnKind::Lstm };
    let mut rng = StdRng::seed_from_u64(seed);
    let features = init::uniform(&mut rng, items, 5, 1.0);
    (CauserModel::new(cfg, features, seed), seed)
}

fn history_strategy(num_items: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..num_items, 1..3)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn score_all_is_finite_and_full_length(spec in model_strategy()) {
        let (model, seed) = build(spec);
        let ic = model.inference_cache();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let history: Vec<Vec<usize>> = (0..3)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, 0..model.config.num_items)])
            .collect();
        let scores = model.score_all(&ic, 0, &history);
        prop_assert_eq!(scores.len(), model.config.num_items);
        prop_assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn filter_is_monotone_in_epsilon(spec in model_strategy()) {
        let (mut model, seed) = build(spec);
        let cache = model.relation_cache();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let history: Vec<Vec<usize>> = (0..3)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, 0..model.config.num_items)])
            .collect();
        let b = rand::Rng::gen_range(&mut rng, 0..model.config.num_items);
        model.config.epsilon = 0.0;
        let loose = model.filter_history(&cache, &history, b);
        model.config.epsilon = 0.2;
        let tight = model.filter_history(&cache, &history, b);
        for (l, t) in loose.iter().zip(tight.iter()) {
            // Tight filter keeps a subset of the loose filter.
            prop_assert!(t.iter().all(|x| l.contains(x)));
        }
    }

    #[test]
    fn sequence_logits_one_per_candidate(spec in model_strategy()) {
        let (model, seed) = build(spec);
        let cache = model.relation_cache();
        let mut g = Graph::new();
        let shared = model.shared_nodes(&mut g);
        let n = model.config.num_items;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let steps: Vec<Vec<usize>> = (0..4)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, 0..n)])
            .collect();
        let negatives = vec![vec![1 % n, (2 + 3) % n]; 2];
        let logits = model.sequence_logits(&mut g, &shared, &cache, 0, &steps, &[1, 3], &negatives);
        // Positives: 1 per target step; negatives: 2 each.
        prop_assert_eq!(logits.len(), 2 * (1 + 2));
        // Loss must be buildable and back-propagable.
        let loss = model.bce_from_logits(&mut g, &logits).unwrap();
        let mut gs = GradStore::new(&model.params);
        g.backward(loss, &mut gs);
        prop_assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn explanation_scores_nonnegative_full(
        spec in model_strategy(),
        hist in history_strategy(8),
    ) {
        let (model, seed) = build(spec);
        prop_assume!(model.config.variant == CauserVariant::Full);
        let ic = model.inference_cache();
        let items: Vec<usize> = hist.iter().map(|s| s[0] % model.config.num_items).collect();
        let target = (seed as usize) % model.config.num_items;
        let scores = model.explanation_scores(&ic, 0, &items, target);
        prop_assert_eq!(scores.len(), items.len());
        prop_assert!(scores.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relation_cache_consistent_with_eq9(spec in model_strategy()) {
        let (model, _seed) = build(spec);
        let cache = model.relation_cache();
        let assign = model.cluster.assignments_plain(&model.params);
        let wc = model.causal.value(&model.params);
        let n = model.config.num_items;
        // Spot-check a few pairs against the explicit triple product.
        for (a, b) in [(0usize, 1usize), (n - 1, 0), (n / 2, n - 1)] {
            let mut expected = 0.0;
            for i in 0..model.config.k {
                for j in 0..model.config.k {
                    expected += assign.get(a, i) * wc.get(i, j) * assign.get(b, j);
                }
            }
            prop_assert!((cache.w_ab(a, b) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn assignments_rows_sum_to_one(spec in model_strategy()) {
        let (model, _seed) = build(spec);
        let a = model.cluster.assignments_plain(&model.params);
        for i in 0..a.rows() {
            let s: f64 = a.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(a.row(i).iter().all(|&v| v >= 0.0));
        }
    }
}

#[test]
fn variants_differ_only_where_expected() {
    // The -causal variant must ignore the relation cache entirely.
    let mut cfg = CauserConfig::new(3, 10, 5);
    cfg.k = 3;
    cfg.d1 = 6;
    cfg.d2 = 5;
    cfg.user_dim = 3;
    cfg.hidden_dim = 6;
    cfg.item_out_dim = 5;
    cfg.variant = CauserVariant::NoCausal;
    let mut rng = StdRng::seed_from_u64(7);
    let features = init::uniform(&mut rng, 10, 5, 1.0);
    let model = CauserModel::new(cfg, features, 7);
    let cache = model.relation_cache();
    let history = vec![vec![0usize], vec![5]];
    assert_eq!(model.filter_history(&cache, &history, 3), history);
    let _ = Matrix::zeros(1, 1);
}

/// Longer histories with arbitrary chunking for the incremental-stream
/// property below: the interesting failure modes (stale-fold refresh after
/// several deferred appends, re-weight over a grown stack) need more than
/// the 1–4 steps of `history_strategy`.
fn long_history_strategy(num_items: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..num_items, 1..3)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        2..9,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental stream contract of DESIGN.md §14, over arbitrary
    /// histories, filters, and append chunkings: after any sequence of
    /// deferred appends (`advance_stream_with`) followed by one
    /// refresh+fold, the stream's run is **bitwise** what `history_run`
    /// returns over the concatenation (step order is preserved end to end),
    /// the step-ordered Ŵ≡1 fallback (`uniform_vh_into`) is bitwise too,
    /// and the T-collapsed causal fold scores every candidate within
    /// ≤1e-12 relative of `score_candidates_with_run` (the fold
    /// re-associates eq. (10)'s sums, so bitwise is not promised there).
    #[test]
    fn incremental_stream_equivalence_any_chunking(
        spec in model_strategy(),
        history in long_history_strategy(8),
        cuts in prop::collection::vec(0usize..100, 0..3),
        filter_sel in 0usize..5,
        flip in prop::bool::ANY,
    ) {
        let (model, seed) = build(spec);
        let k = model.config.k;
        let history: Vec<Vec<usize>> = history
            .into_iter()
            .map(|s| s.into_iter().filter(|&a| a < model.config.num_items).collect())
            .filter(|s: &Vec<usize>| !s.is_empty())
            .collect();
        prop_assume!(!history.is_empty());
        // The stub proptest has no Option strategy: 4 selects the
        // unfiltered stream, 0..4 a (wrapped) cluster filter.
        let filter = (filter_sel < 4).then(|| filter_sel % k);
        let ic = model.inference_cache();
        let user = (seed as usize) % model.config.num_users;

        // Split the history at sorted random cut points: each segment is one
        // deferred append; `flip` toggles eager re-weighting between chunks
        // (mixing fresh and stale folds across the same stream lifetime).
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (history.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut stream = model.new_stream();
        let mut scratch = causer_core::EncodeScratch::default();
        let mut prev = 0usize;
        for cut in cuts.into_iter().chain([history.len()]) {
            if cut > prev {
                model.advance_stream_with(&ic, user, filter, &history[prev..cut], &mut stream, &mut scratch);
                if flip {
                    model.refresh_stream(&mut stream, &mut scratch);
                    model.ensure_fold(&mut stream);
                }
                prev = cut;
            }
        }
        model.refresh_stream(&mut stream, &mut scratch);
        model.ensure_fold(&mut stream);

        let full = model.history_run(&ic, user, &history, filter);
        match (full, stream.run()) {
            (None, None) => {} // every step filtered away on both paths
            (Some(run), Some(got)) => {
                // Run equality: bitwise, field by field.
                prop_assert_eq!(run.alpha.len(), got.alpha.len());
                for (a, b) in run.alpha.iter().zip(&got.alpha) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "alpha diverged");
                }
                for (a, b) in run.c_mat.data().iter().zip(got.c_mat.data()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "c_mat diverged");
                }
                for (a, b) in run.s_bags.data().iter().zip(got.s_bags.data()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "s_bags diverged");
                }
                // Ŵ≡1 fallback: step-ordered accumulators, bitwise.
                let want_vh = model.uniform_vh(&run);
                let mut got_vh = Vec::new();
                model.uniform_vh_into(stream.weights_fold().unwrap(), &mut got_vh);
                prop_assert_eq!(want_vh.len(), got_vh.len());
                for (a, b) in want_vh.iter().zip(&got_vh) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "uniform_vh diverged");
                }
                // Causal fold scoring: ≤1e-12 relative on every candidate.
                let cand: Vec<usize> = (0..model.config.num_items).collect();
                let assign = ic.rel.assignments.select_rows(&cand);
                let mut bufs = causer_core::ScoreBufs::new();
                let mut want = vec![0.0; cand.len()];
                model.score_candidates_with_run(&ic, &run, &cand, &assign, &mut bufs, &mut want);
                let mut got_scores = vec![0.0; cand.len()];
                model.score_candidates_with_fold(
                    &ic,
                    stream.fold().unwrap(),
                    &cand,
                    &assign,
                    &mut bufs,
                    &mut got_scores,
                );
                for (b, (w, g)) in want.iter().zip(&got_scores).enumerate() {
                    let tol = 1e-12 * w.abs().max(g.abs()).max(1.0);
                    prop_assert!(
                        (w - g).abs() <= tol,
                        "fold score diverged on item {}: {} vs {}", b, g, w
                    );
                }
            }
            (full, got) => prop_assert!(
                false,
                "fallback condition diverged: history_run {:?} vs stream {:?}",
                full.is_some(),
                got.is_some()
            ),
        }
    }
}
