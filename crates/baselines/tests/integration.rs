//! Cross-model integration checks for the baselines crate.

use causer_baselines::*;
use causer_core::SeqRecommender;
use causer_data::{simulate, DatasetKind, DatasetProfile};

fn toy() -> (causer_data::SimulatedDataset, causer_data::LeaveLastOut) {
    let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.01);
    let sim = simulate(&profile, 77);
    let split = sim.interactions.leave_last_out();
    (sim, split)
}

#[test]
fn every_model_scores_every_item_finite() {
    let (sim, split) = toy();
    let cfg = BaselineTrainConfig { epochs: 1, ..Default::default() };
    let mut models: Vec<Box<dyn SeqRecommender>> = vec![
        Box::new(BprRecommender::new(8, 2, 1)),
        Box::new(NcfRecommender::new(8, 1, 1)),
        Box::new(gru4rec(split.num_items, cfg.clone(), 1)),
        Box::new(narm(split.num_items, cfg.clone(), 1)),
        Box::new(stamp(split.num_items, cfg.clone(), 1)),
        Box::new(sasrec(split.num_items, cfg.clone(), 1)),
        Box::new(vtrnn(split.num_items, sim.features.clone(), cfg.clone(), 1)),
        Box::new(mmsarec(split.num_items, sim.features.clone(), cfg, 1)),
    ];
    for model in &mut models {
        model.fit(&split);
        for case in split.test.iter().take(3) {
            let scores = model.scores(case);
            assert_eq!(scores.len(), split.num_items, "{}", model.name());
            assert!(scores.iter().all(|s| s.is_finite()), "{}", model.name());
        }
    }
}

#[test]
fn side_information_changes_the_model() {
    // MMSARec with different feature matrices must produce different scores
    // (the side projection is live, not dead weight).
    let (sim, split) = toy();
    let cfg = BaselineTrainConfig { epochs: 2, ..Default::default() };
    let mut a = mmsarec(split.num_items, sim.features.clone(), cfg.clone(), 5);
    let zeros = causer_tensor::Matrix::zeros(sim.features.rows(), sim.features.cols());
    let mut b = mmsarec(split.num_items, zeros, cfg, 5);
    a.fit(&split);
    b.fit(&split);
    let case = &split.test[0];
    let sa = a.scores(case);
    let sb = b.scores(case);
    let diff: f64 = sa.iter().zip(&sb).map(|(x, y)| (x - y).abs()).sum();
    assert!(diff > 1e-6, "side features had no effect");
}

#[test]
fn sequence_order_matters_for_sequential_models() {
    let (_sim, split) = toy();
    let cfg = BaselineTrainConfig { epochs: 2, ..Default::default() };
    let mut model = gru4rec(split.num_items, cfg, 9);
    model.fit(&split);
    // Find a case with at least 2 distinct history steps and reverse it.
    let case = split
        .test
        .iter()
        .find(|c| c.history.len() >= 2 && c.history[0] != c.history[c.history.len() - 1])
        .expect("need a multi-step case");
    let forward = model.scores(case);
    let mut reversed = case.clone();
    reversed.history.reverse();
    let backward = model.scores(&reversed);
    let diff: f64 = forward.iter().zip(&backward).map(|(x, y)| (x - y).abs()).sum();
    assert!(diff > 1e-9, "GRU4Rec is order-invariant, which is wrong");
}

#[test]
fn bpr_is_order_invariant_as_expected() {
    // Sanity check on the *non*-sequential baseline: scores depend on the
    // user, not the order of the history.
    let (_sim, split) = toy();
    let mut model = BprRecommender::new(8, 2, 3);
    model.fit(&split);
    let case = split.test.iter().find(|c| c.history.len() >= 2).unwrap();
    let forward = model.scores(case);
    let mut reversed = case.clone();
    reversed.history.reverse();
    let backward = model.scores(&reversed);
    assert_eq!(forward, backward);
}
