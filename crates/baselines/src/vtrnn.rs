//! VTRNN (Cui et al., 2016): a recurrent sequential recommender whose step
//! inputs fuse the item embedding with (projected) raw side features — the
//! paper's side-information RNN baseline.

use crate::common::{BaselineTrainConfig, NeuralRecommender, SeqEncoder};
use causer_core::rnn::{Cell, RnnKind};
use causer_data::Step;
use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct VtRnnEncoder {
    emb: ParamId,
    out: ParamId,
    proj: ParamId,
    feat_proj: ParamId,
    features: Matrix,
    cell: Cell,
    pub feat_dim_out: usize,
}

impl VtRnnEncoder {
    pub fn build(
        num_items: usize,
        features: Matrix,
        emb_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> (Self, ParamSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let feat_dim_out = emb_dim / 2;
        let emb = ps.add("emb", init::normal(&mut rng, num_items, emb_dim, 0.1));
        let out = ps.add("out", init::normal(&mut rng, num_items, out_dim, 0.1));
        let proj = ps.add("proj", init::xavier(&mut rng, hidden_dim, out_dim));
        let feat_proj = ps.add("feat_proj", init::xavier(&mut rng, features.cols(), feat_dim_out));
        let cell =
            Cell::new(RnnKind::Gru, &mut ps, "gru", emb_dim + feat_dim_out, hidden_dim, &mut rng);
        (VtRnnEncoder { emb, out, proj, feat_proj, features, cell, feat_dim_out }, ps)
    }
}

impl SeqEncoder for VtRnnEncoder {
    fn label(&self) -> String {
        "VTRNN".into()
    }

    fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
        let emb = g.param(ps, self.emb);
        let fp = g.param(ps, self.feat_proj);
        let mut state = self.cell.init_state(g, 1);
        for step in history {
            let x_item = g.embed_bag(emb, std::slice::from_ref(step), false);
            // Summed raw features of the step are data, not parameters —
            // fold them into a constant and project.
            let mut fsum = Matrix::zeros(1, self.features.cols());
            for &item in step {
                for (o, &f) in fsum.row_mut(0).iter_mut().zip(self.features.row(item)) {
                    *o += f;
                }
            }
            let fnode = g.constant(fsum);
            let fproj = g.matmul(fnode, fp); // 1 × feat_dim_out
            let x = g.concat_cols(x_item, fproj);
            state = self.cell.step(g, ps, x, &state);
        }
        let proj = g.param(ps, self.proj);
        g.matmul(state.h, proj)
    }

    fn out_emb(&self) -> ParamId {
        self.out
    }
}

/// Construct a ready-to-fit VTRNN recommender.
pub fn vtrnn(
    num_items: usize,
    features: Matrix,
    cfg: BaselineTrainConfig,
    seed: u64,
) -> NeuralRecommender<VtRnnEncoder> {
    let (enc, ps) = VtRnnEncoder::build(num_items, features, 24, 32, 24, seed);
    NeuralRecommender::new(enc, ps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::SeqRecommender;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn vtrnn_trains_and_scores() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.008);
        let sim = simulate(&profile, 18);
        let split = sim.interactions.leave_last_out();
        let mut model = vtrnn(
            split.num_items,
            sim.features.clone(),
            BaselineTrainConfig { epochs: 3, ..Default::default() },
            8,
        );
        model.fit(&split);
        assert!(model.epoch_losses[2] < model.epoch_losses[0]);
        let s = model.scores(&split.test[0]);
        assert_eq!(s.len(), split.num_items);
    }

    #[test]
    fn feature_projection_dim_is_consistent() {
        let features = Matrix::zeros(10, 6);
        let (enc, _ps) = VtRnnEncoder::build(10, features, 8, 12, 8, 3);
        assert_eq!(enc.feat_dim_out, 4);
        assert_eq!(enc.cell.input_dim(), 12);
    }
}
