//! SASRec (Kang & McAuley, 2018): self-attentive sequential recommendation —
//! learned positional embeddings, causal (left-to-right) single-head
//! self-attention, a position-wise feed-forward network, and layer norm with
//! residual connections.

use crate::common::{BaselineTrainConfig, NeuralRecommender, SeqEncoder};
use causer_data::Step;
use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One self-attention block's parameters.
pub(crate) struct Block {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    ln1_g: ParamId,
    ln1_b: ParamId,
    ff1: ParamId,
    fb1: ParamId,
    ff2: ParamId,
    fb2: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
}

impl Block {
    fn new(ps: &mut ParamSet, prefix: &str, dim: usize, rng: &mut StdRng) -> Self {
        Block {
            wq: ps.add(&format!("{prefix}.wq"), init::xavier(rng, dim, dim)),
            wk: ps.add(&format!("{prefix}.wk"), init::xavier(rng, dim, dim)),
            wv: ps.add(&format!("{prefix}.wv"), init::xavier(rng, dim, dim)),
            ln1_g: ps.add(&format!("{prefix}.ln1_g"), Matrix::ones(1, dim)),
            ln1_b: ps.add(&format!("{prefix}.ln1_b"), Matrix::zeros(1, dim)),
            ff1: ps.add(&format!("{prefix}.ff1"), init::xavier(rng, dim, dim)),
            fb1: ps.add(&format!("{prefix}.fb1"), Matrix::zeros(1, dim)),
            ff2: ps.add(&format!("{prefix}.ff2"), init::xavier(rng, dim, dim)),
            fb2: ps.add(&format!("{prefix}.fb2"), Matrix::zeros(1, dim)),
            ln2_g: ps.add(&format!("{prefix}.ln2_g"), Matrix::ones(1, dim)),
            ln2_b: ps.add(&format!("{prefix}.ln2_b"), Matrix::zeros(1, dim)),
        }
    }

    /// Apply the block to `x (T×d)` with a causal mask.
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId, dim: usize) -> NodeId {
        let (t, _) = g.shape(x);
        let wq = g.param(ps, self.wq);
        let wk = g.param(ps, self.wk);
        let wv = g.param(ps, self.wv);
        let q = g.matmul(x, wq);
        let k = g.matmul(x, wk);
        let v = g.matmul(x, wv);
        let scores = g.matmul_nt(q, k); // T × T
        let scaled = g.scale(scores, 1.0 / (dim as f64).sqrt());
        // Causal mask: position i may attend to j ≤ i.
        let mask = Matrix::from_fn(t, t, |i, j| if j > i { -1e9 } else { 0.0 });
        let mask_node = g.constant(mask);
        let masked = g.add(scaled, mask_node);
        let att = g.softmax_rows(masked);
        let pooled = g.matmul(att, v);
        let res1 = g.add(x, pooled);
        let g1 = g.param(ps, self.ln1_g);
        let b1 = g.param(ps, self.ln1_b);
        let normed = g.layer_norm_rows(res1, g1, b1);
        // Position-wise FFN.
        let ff1 = g.param(ps, self.ff1);
        let fb1 = g.param(ps, self.fb1);
        let ff2 = g.param(ps, self.ff2);
        let fb2 = g.param(ps, self.fb2);
        let h = g.matmul(normed, ff1);
        let h = g.add_row(h, fb1);
        let h = g.relu(h);
        let h = g.matmul(h, ff2);
        let h = g.add_row(h, fb2);
        let res2 = g.add(normed, h);
        let g2 = g.param(ps, self.ln2_g);
        let b2 = g.param(ps, self.ln2_b);
        g.layer_norm_rows(res2, g2, b2)
    }
}

pub struct SasRecEncoder {
    emb: ParamId,
    out: ParamId,
    pos: ParamId,
    blocks: Vec<Block>,
    dim: usize,
    max_len: usize,
    /// Optional raw-feature side information (MMSARec): `(features, proj)`.
    side: Option<(Matrix, ParamId)>,
    label: String,
}

impl SasRecEncoder {
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        num_items: usize,
        dim: usize,
        num_blocks: usize,
        max_len: usize,
        side_features: Option<Matrix>,
        label: &str,
        seed: u64,
    ) -> (Self, ParamSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let emb = ps.add("emb", init::normal(&mut rng, num_items, dim, 0.1));
        let out = ps.add("out", init::normal(&mut rng, num_items, dim, 0.1));
        let pos = ps.add("pos", init::normal(&mut rng, max_len, dim, 0.1));
        let blocks = (0..num_blocks)
            .map(|i| Block::new(&mut ps, &format!("block{i}"), dim, &mut rng))
            .collect();
        let side = side_features.map(|f| {
            let proj = ps.add("side_proj", init::xavier(&mut rng, f.cols(), dim));
            (f, proj)
        });
        (SasRecEncoder { emb, out, pos, blocks, dim, max_len, side, label: label.to_string() }, ps)
    }
}

impl SeqEncoder for SasRecEncoder {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
        let start = history.len().saturating_sub(self.max_len);
        let hist = &history[start..];
        let t = hist.len();
        let emb = g.param(ps, self.emb);
        let bags: Vec<Vec<usize>> = hist.to_vec();
        let mut x = g.embed_bag(emb, &bags, false); // T × d
        if let Some((features, proj)) = &self.side {
            // Side information: summed raw features per step (constant) put
            // through a learned projection, added to the item embeddings.
            let mut side_sum = Matrix::zeros(t, features.cols());
            for (row, step) in hist.iter().enumerate() {
                for &item in step {
                    for (o, &f) in side_sum.row_mut(row).iter_mut().zip(features.row(item)) {
                        *o += f;
                    }
                }
            }
            let side_node = g.constant(side_sum);
            let p = g.param(ps, *proj);
            let projected = g.matmul(side_node, p);
            x = g.add(x, projected);
        }
        let pos = g.param(ps, self.pos);
        let positions: Vec<usize> = (0..t).collect();
        let pos_emb = g.select_rows(pos, &positions);
        let mut h = g.add(x, pos_emb);
        for block in &self.blocks {
            h = block.forward(g, ps, h, self.dim);
        }
        g.select_rows(h, &[t - 1])
    }

    fn out_emb(&self) -> ParamId {
        self.out
    }
}

/// Construct a ready-to-fit SASRec recommender.
pub fn sasrec(
    num_items: usize,
    cfg: BaselineTrainConfig,
    seed: u64,
) -> NeuralRecommender<SasRecEncoder> {
    let max_len = cfg.max_history;
    let (enc, ps) = SasRecEncoder::build(num_items, 24, 1, max_len, None, "SASRec", seed);
    NeuralRecommender::new(enc, ps, cfg)
}

/// MMSARec (Han et al., 2020): SASRec with multi-modal (raw feature) side
/// information encoded into the architecture.
pub fn mmsarec(
    num_items: usize,
    features: Matrix,
    cfg: BaselineTrainConfig,
    seed: u64,
) -> NeuralRecommender<SasRecEncoder> {
    let max_len = cfg.max_history;
    let (enc, ps) =
        SasRecEncoder::build(num_items, 24, 1, max_len, Some(features), "MMSARec", seed);
    NeuralRecommender::new(enc, ps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::SeqRecommender;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn sasrec_trains_and_scores() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.008);
        let split = simulate(&profile, 16).interactions.leave_last_out();
        let mut model =
            sasrec(split.num_items, BaselineTrainConfig { epochs: 3, ..Default::default() }, 6);
        model.fit(&split);
        assert!(model.epoch_losses[2] < model.epoch_losses[0]);
        let s = model.scores(&split.test[0]);
        assert_eq!(s.len(), split.num_items);
    }

    #[test]
    fn mmsarec_uses_side_information() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.008);
        let sim = simulate(&profile, 16);
        let split = sim.interactions.leave_last_out();
        let mut model = mmsarec(
            split.num_items,
            sim.features.clone(),
            BaselineTrainConfig { epochs: 2, ..Default::default() },
            6,
        );
        assert_eq!(model.name(), "MMSARec");
        model.fit(&split);
        assert!(model.epoch_losses[1].is_finite());
        let s = model.scores(&split.test[0]);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn long_history_is_truncated_to_max_len() {
        let (enc, ps) = SasRecEncoder::build(10, 8, 1, 4, None, "SASRec", 3);
        let mut g = Graph::new();
        let history: Vec<Vec<usize>> = (0..9).map(|i| vec![i % 10]).collect();
        let r = enc.repr(&mut g, &ps, 0, &history);
        assert_eq!(g.shape(r), (1, 8));
    }
}
