//! BPR-MF (Rendle et al., 2009): Bayesian personalized ranking with matrix
//! factorization, trained with pairwise SGD on (user, positive, negative)
//! triples. Non-sequential — the paper's classical implicit-feedback
//! baseline.

use causer_core::SeqRecommender;
use causer_data::{EvalCase, LeaveLastOut, NegativeSampler};
use causer_tensor::{init, stable_sigmoid, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// BPR matrix-factorization recommender with manual pairwise SGD (the
/// closed-form gradients make autodiff pointless here).
pub struct BprRecommender {
    pub dim: usize,
    pub lr: f64,
    pub reg: f64,
    pub epochs: usize,
    pub seed: u64,
    user_factors: Matrix,
    item_factors: Matrix,
    item_bias: Vec<f64>,
}

impl BprRecommender {
    pub fn new(dim: usize, epochs: usize, seed: u64) -> Self {
        BprRecommender {
            dim,
            lr: 0.05,
            reg: 1e-4,
            epochs,
            seed,
            user_factors: Matrix::zeros(0, 0),
            item_factors: Matrix::zeros(0, 0),
            item_bias: Vec::new(),
        }
    }
}

impl SeqRecommender for BprRecommender {
    fn name(&self) -> String {
        "BPR".into()
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.user_factors = init::normal(&mut rng, split.num_users, self.dim, 0.1);
        self.item_factors = init::normal(&mut rng, split.num_items, self.dim, 0.1);
        self.item_bias = vec![0.0; split.num_items];
        let sampler = NegativeSampler::from_interactions(&crate::common::train_interactions(split));

        // All (user, item) positive pairs.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for h in &split.train {
            for step in &h.steps {
                for &i in step {
                    pairs.push((h.user, i));
                }
            }
        }
        for _ in 0..self.epochs {
            pairs.shuffle(&mut rng);
            for &(u, i) in &pairs {
                let j = sampler.sample_excluding(&mut rng, 1, &[i]);
                let Some(&j) = j.first() else { continue };
                let pu = self.user_factors.row(u).to_vec();
                let qi = self.item_factors.row(i).to_vec();
                let qj = self.item_factors.row(j).to_vec();
                let x: f64 = self.item_bias[i] - self.item_bias[j]
                    + pu.iter()
                        .zip(qi.iter().zip(qj.iter()))
                        .map(|(&p, (&a, &b))| p * (a - b))
                        .sum::<f64>();
                let e = stable_sigmoid(-x); // d/dx of -ln σ(x) is -σ(-x)
                let (lr, reg) = (self.lr, self.reg);
                for d in 0..self.dim {
                    let pu_d = pu[d];
                    let qi_d = qi[d];
                    let qj_d = qj[d];
                    self.user_factors.row_mut(u)[d] += lr * (e * (qi_d - qj_d) - reg * pu_d);
                    self.item_factors.row_mut(i)[d] += lr * (e * pu_d - reg * qi_d);
                    self.item_factors.row_mut(j)[d] += lr * (-e * pu_d - reg * qj_d);
                }
                self.item_bias[i] += lr * (e - reg * self.item_bias[i]);
                self.item_bias[j] += lr * (-e - reg * self.item_bias[j]);
            }
        }
    }

    fn scores(&self, case: &EvalCase) -> Vec<f64> {
        let pu = self.user_factors.row(case.user);
        (0..self.item_factors.rows())
            .map(|i| {
                self.item_bias[i]
                    + self.item_factors.row(i).iter().zip(pu).map(|(&q, &p)| q * p).sum::<f64>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::{evaluate, RandomRecommender};
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn bpr_beats_random() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.02);
        let split = simulate(&profile, 25).interactions.leave_last_out();
        let mut bpr = BprRecommender::new(16, 10, 3);
        bpr.fit(&split);
        let mut rnd = RandomRecommender::new(1);
        rnd.fit(&split);
        let b = evaluate(&bpr, &split.test, 5, 200);
        let r = evaluate(&rnd, &split.test, 5, 200);
        assert!(b.ndcg > r.ndcg, "bpr {} vs random {}", b.ndcg, r.ndcg);
    }

    #[test]
    fn bpr_ranks_popular_positives_highly() {
        let profile = DatasetProfile::paper(DatasetKind::Epinions).scaled(0.05);
        let split = simulate(&profile, 27).interactions.leave_last_out();
        let mut bpr = BprRecommender::new(8, 5, 3);
        bpr.fit(&split);
        let scores = bpr.scores(&split.test[0]);
        assert_eq!(scores.len(), split.num_items);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
