//! # causer-baselines
//!
//! The comparison models of Table IV, all built on the same autodiff
//! substrate as Causer so that relative comparisons are apples-to-apples:
//!
//! - [`bpr`] — BPR-MF (pairwise implicit-feedback matrix factorization);
//! - [`ncf`] — NCF/NeuMF (GMF + MLP fusion);
//! - [`mod@gru4rec`] — GRU over the session;
//! - [`mod@narm`] — GRU + global/local attention;
//! - [`mod@stamp`] — short-term attention/memory priority;
//! - [`mod@sasrec`] — causal self-attention (also hosts MMSARec, the
//!   side-information variant);
//! - [`mod@vtrnn`] — GRU with raw-feature-fused inputs.
//!
//! All models implement [`causer_core::SeqRecommender`]; the neural
//! sequential ones share the generic trainer in [`common`].

pub mod bpr;
pub mod common;
pub mod gru4rec;
pub mod narm;
pub mod ncf;
pub mod sasrec;
pub mod stamp;
pub mod vtrnn;

pub use bpr::BprRecommender;
pub use common::{BaselineTrainConfig, NeuralRecommender, SeqEncoder};
pub use gru4rec::gru4rec;
pub use narm::narm;
pub use ncf::NcfRecommender;
pub use sasrec::{mmsarec, sasrec};
pub use stamp::stamp;
pub use vtrnn::vtrnn;
