//! NARM (Li et al., 2017): neural attentive session-based recommendation —
//! a GRU with a global (last hidden) and a local (attention-pooled)
//! representation, concatenated and projected.

use crate::common::{BaselineTrainConfig, NeuralRecommender, SeqEncoder};
use causer_core::attention::BilinearAttention;
use causer_core::rnn::{Cell, RnnKind};
use causer_data::Step;
use causer_tensor::{init, Graph, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct NarmEncoder {
    emb: ParamId,
    out: ParamId,
    proj: ParamId,
    cell: Cell,
    attention: BilinearAttention,
}

impl NarmEncoder {
    pub fn build(
        num_items: usize,
        emb_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> (Self, ParamSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let emb = ps.add("emb", init::normal(&mut rng, num_items, emb_dim, 0.1));
        let out = ps.add("out", init::normal(&mut rng, num_items, out_dim, 0.1));
        // Projection B maps [global ; local] (2·d_h) to the embedding space.
        let proj = ps.add("proj", init::xavier(&mut rng, 2 * hidden_dim, out_dim));
        let cell = Cell::new(RnnKind::Gru, &mut ps, "gru", emb_dim, hidden_dim, &mut rng);
        let attention = BilinearAttention::new(&mut ps, "att", hidden_dim, &mut rng);
        (NarmEncoder { emb, out, proj, cell, attention }, ps)
    }
}

impl NarmEncoder {
    /// NARM's attention weights over history steps — its native
    /// "explanation" signal, used in the Figure 8 case studies.
    pub fn attention_weights(&self, ps: &ParamSet, history: &[Step]) -> Vec<f64> {
        if history.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let emb = g.param(ps, self.emb);
        let mut state = self.cell.init_state(&mut g, 1);
        let mut hs = Vec::with_capacity(history.len());
        for step in history {
            let x = g.embed_bag(emb, std::slice::from_ref(step), false);
            state = self.cell.step(&mut g, ps, x, &state);
            hs.push(state.h);
        }
        let h_stack = g.vstack(&hs);
        let alpha = self.attention.weights(&mut g, ps, h_stack, state.h);
        g.value(alpha).col(0)
    }
}

impl SeqEncoder for NarmEncoder {
    fn label(&self) -> String {
        "NARM".into()
    }

    fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
        let emb = g.param(ps, self.emb);
        let mut state = self.cell.init_state(g, 1);
        let mut hs = Vec::with_capacity(history.len());
        for step in history {
            let x = g.embed_bag(emb, std::slice::from_ref(step), false);
            state = self.cell.step(g, ps, x, &state);
            hs.push(state.h);
        }
        let h_stack = g.vstack(&hs); // T × d_h
        let alpha = self.attention.weights(g, ps, h_stack, state.h); // T×1
        let local = g.matmul_tn(alpha, h_stack); // 1×d_h
        let both = g.concat_cols(state.h, local); // 1×2d_h
        let proj = g.param(ps, self.proj);
        g.matmul(both, proj)
    }

    fn out_emb(&self) -> ParamId {
        self.out
    }
}

/// Construct a ready-to-fit NARM recommender.
pub fn narm(
    num_items: usize,
    cfg: BaselineTrainConfig,
    seed: u64,
) -> NeuralRecommender<NarmEncoder> {
    let (enc, ps) = NarmEncoder::build(num_items, 24, 32, 24, seed);
    NeuralRecommender::new(enc, ps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::SeqRecommender;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn narm_trains_and_scores() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.008);
        let split = simulate(&profile, 12).interactions.leave_last_out();
        let mut model =
            narm(split.num_items, BaselineTrainConfig { epochs: 3, ..Default::default() }, 2);
        model.fit(&split);
        assert!(model.epoch_losses[2] < model.epoch_losses[0]);
        let s = model.scores(&split.test[0]);
        assert_eq!(s.len(), split.num_items);
        assert!(s.iter().all(|v| v.is_finite()));
    }
}
