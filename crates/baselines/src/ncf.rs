//! NCF / NeuMF (He et al., 2017): neural collaborative filtering — a fusion
//! of generalized matrix factorization (GMF) and an MLP over concatenated
//! user/item embeddings, trained pointwise with sampled negatives.

use causer_core::SeqRecommender;
use causer_data::{EvalCase, LeaveLastOut, NegativeSampler};
use causer_tensor::{init, Adam, GradStore, Graph, Matrix, NodeId, Optimizer, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

pub struct NcfRecommender {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f64,
    pub neg_samples: usize,
    pub batch_size: usize,
    pub seed: u64,
    params: ParamSet,
    ids: Option<Ids>,
    epoch_losses: Vec<f64>,
}

struct Ids {
    p_gmf: ParamId,
    q_gmf: ParamId,
    p_mlp: ParamId,
    q_mlp: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    h: ParamId,
}

impl NcfRecommender {
    pub fn new(dim: usize, epochs: usize, seed: u64) -> Self {
        NcfRecommender {
            dim,
            epochs,
            lr: 5e-3,
            neg_samples: 3,
            batch_size: 256,
            seed,
            params: ParamSet::new(),
            ids: None,
            epoch_losses: Vec::new(),
        }
    }

    pub fn epoch_losses(&self) -> &[f64] {
        &self.epoch_losses
    }

    /// Fused GMF+MLP logits for a whole batch of (user, item) pairs at
    /// once — one node set per batch rather than per pair.
    fn batch_logits(&self, g: &mut Graph, ids: &Ids, users: &[usize], items: &[usize]) -> NodeId {
        debug_assert_eq!(users.len(), items.len());
        let ps = &self.params;
        let pg = g.param(ps, ids.p_gmf);
        let qg = g.param(ps, ids.q_gmf);
        let pm = g.param(ps, ids.p_mlp);
        let qm = g.param(ps, ids.q_mlp);
        let pu = g.select_rows(pg, users); // c × d
        let qi = g.select_rows(qg, items);
        let gmf = g.mul(pu, qi); // c × d
        let pum = g.select_rows(pm, users);
        let qim = g.select_rows(qm, items);
        let cat = g.concat_cols(pum, qim); // c × 2d
        let w1 = g.param(ps, ids.w1);
        let b1 = g.param(ps, ids.b1);
        let h1 = g.matmul(cat, w1);
        let h1 = g.add_row(h1, b1);
        let h1 = g.relu(h1);
        let w2 = g.param(ps, ids.w2);
        let b2 = g.param(ps, ids.b2);
        let h2 = g.matmul(h1, w2);
        let h2 = g.add_row(h2, b2);
        let h2 = g.relu(h2); // c × d/2
        let fused = g.concat_cols(gmf, h2); // c × (d + d/2)
        let h = g.param(ps, ids.h);
        g.matmul(fused, h) // c × 1
    }
}

impl SeqRecommender for NcfRecommender {
    fn name(&self) -> String {
        "NCF".into()
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.dim;
        let half = (d / 2).max(1);
        let mut ps = ParamSet::new();
        let ids = Ids {
            p_gmf: ps.add("p_gmf", init::normal(&mut rng, split.num_users, d, 0.1)),
            q_gmf: ps.add("q_gmf", init::normal(&mut rng, split.num_items, d, 0.1)),
            p_mlp: ps.add("p_mlp", init::normal(&mut rng, split.num_users, d, 0.1)),
            q_mlp: ps.add("q_mlp", init::normal(&mut rng, split.num_items, d, 0.1)),
            w1: ps.add("w1", init::xavier(&mut rng, 2 * d, d)),
            b1: ps.add("b1", Matrix::zeros(1, d)),
            w2: ps.add("w2", init::xavier(&mut rng, d, half)),
            b2: ps.add("b2", Matrix::zeros(1, half)),
            h: ps.add("h", init::xavier(&mut rng, d + half, 1)),
        };
        self.params = ps;
        self.ids = Some(ids);

        let sampler = NegativeSampler::from_interactions(&crate::common::train_interactions(split));
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for h in &split.train {
            for step in &h.steps {
                for &i in step {
                    pairs.push((h.user, i));
                }
            }
        }
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            pairs.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in pairs.chunks(self.batch_size) {
                let mut g = Graph::new();
                let ids = self.ids.as_ref().expect("initialized above");
                let mut users = Vec::with_capacity(chunk.len() * (1 + self.neg_samples));
                let mut items = Vec::with_capacity(users.capacity());
                let mut targets = Vec::with_capacity(users.capacity());
                for &(u, i) in chunk {
                    users.push(u);
                    items.push(i);
                    targets.push(1.0);
                    for j in sampler.sample_excluding(&mut rng, self.neg_samples, &[i]) {
                        users.push(u);
                        items.push(j);
                        targets.push(0.0);
                    }
                }
                let logits = self.batch_logits(&mut g, ids, &users, &items);
                let t = Matrix::from_vec(targets.len(), 1, targets);
                let loss = g.bce_with_logits(logits, &t);
                epoch_loss += g.value(loss).item();
                batches += 1;
                let mut gs = GradStore::new(&self.params);
                g.backward(loss, &mut gs);
                drop(g);
                gs.clip_global_norm(5.0);
                opt.step(&mut self.params, &mut gs);
            }
            self.epoch_losses.push(if batches > 0 { epoch_loss / batches as f64 } else { 0.0 });
        }
    }

    fn scores(&self, case: &EvalCase) -> Vec<f64> {
        // Plain-matrix batch forward over the whole catalog.
        let ids = self.ids.as_ref().expect("fit() must run before scores()");
        let ps = &self.params;
        let u = case.user;
        let n = ps.value(ids.q_gmf).rows();
        let pu = ps.value(ids.p_gmf).select_rows(&[u]);
        let qg = ps.value(ids.q_gmf);
        // GMF part: row-wise p_u ∘ q_i for all items.
        let mut gmf = Matrix::zeros(n, self.dim);
        for i in 0..n {
            for (o, (&p, &q)) in gmf.row_mut(i).iter_mut().zip(pu.row(0).iter().zip(qg.row(i))) {
                *o = p * q;
            }
        }
        // MLP part.
        let pum = ps.value(ids.p_mlp).select_rows(&[u]);
        let qm = ps.value(ids.q_mlp);
        let mut cat = Matrix::zeros(n, 2 * self.dim);
        for i in 0..n {
            cat.row_mut(i)[..self.dim].copy_from_slice(pum.row(0));
            cat.row_mut(i)[self.dim..].copy_from_slice(qm.row(i));
        }
        let mut h1 = cat.matmul(ps.value(ids.w1));
        causer_core::clustering::add_row_inplace(&mut h1, ps.value(ids.b1));
        h1.map_inplace(|v| v.max(0.0));
        let mut h2 = h1.matmul(ps.value(ids.w2));
        causer_core::clustering::add_row_inplace(&mut h2, ps.value(ids.b2));
        h2.map_inplace(|v| v.max(0.0));
        let fused = Matrix::hstack(&[&gmf, &h2]);
        fused.matmul(ps.value(ids.h)).col(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::{evaluate, RandomRecommender};
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn ncf_trains_and_beats_random() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.05);
        let split = simulate(&profile, 31).interactions.leave_last_out();
        let mut ncf = NcfRecommender::new(8, 6, 3);
        ncf.fit(&split);
        assert!(ncf.epoch_losses()[2] < ncf.epoch_losses()[0]);
        let mut rnd = RandomRecommender::new(4);
        rnd.fit(&split);
        let n = evaluate(&ncf, &split.test, 5, 150);
        let r = evaluate(&rnd, &split.test, 5, 150);
        assert!(n.ndcg >= r.ndcg, "ncf {} vs random {}", n.ndcg, r.ndcg);
    }
}
