//! GRU4Rec (Hidasi et al., 2016): session-based recommendation with a GRU
//! over the item sequence; each history step is the input of one RNN step.

use crate::common::{BaselineTrainConfig, NeuralRecommender, SeqEncoder};
use causer_core::rnn::{Cell, RnnKind};
use causer_data::Step;
use causer_tensor::{init, Graph, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Gru4RecEncoder {
    emb: ParamId,
    out: ParamId,
    proj: ParamId,
    cell: Cell,
}

impl Gru4RecEncoder {
    pub fn build(
        num_items: usize,
        emb_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> (Self, ParamSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let emb = ps.add("emb", init::normal(&mut rng, num_items, emb_dim, 0.1));
        let out = ps.add("out", init::normal(&mut rng, num_items, out_dim, 0.1));
        let proj = ps.add("proj", init::xavier(&mut rng, hidden_dim, out_dim));
        let cell = Cell::new(RnnKind::Gru, &mut ps, "gru", emb_dim, hidden_dim, &mut rng);
        (Gru4RecEncoder { emb, out, proj, cell }, ps)
    }
}

impl SeqEncoder for Gru4RecEncoder {
    fn label(&self) -> String {
        "GRU4Rec".into()
    }

    fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
        let emb = g.param(ps, self.emb);
        let mut state = self.cell.init_state(g, 1);
        for step in history {
            let x = g.embed_bag(emb, std::slice::from_ref(step), false);
            state = self.cell.step(g, ps, x, &state);
        }
        let proj = g.param(ps, self.proj);
        g.matmul(state.h, proj)
    }

    fn out_emb(&self) -> ParamId {
        self.out
    }
}

/// Construct a ready-to-fit GRU4Rec recommender.
pub fn gru4rec(
    num_items: usize,
    cfg: BaselineTrainConfig,
    seed: u64,
) -> NeuralRecommender<Gru4RecEncoder> {
    let (enc, ps) = Gru4RecEncoder::build(num_items, 24, 32, 24, seed);
    NeuralRecommender::new(enc, ps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::{evaluate, RandomRecommender, SeqRecommender};
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn gru4rec_learns_something() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.03);
        let split = simulate(&profile, 8).interactions.leave_last_out();
        let mut model =
            gru4rec(split.num_items, BaselineTrainConfig { epochs: 6, ..Default::default() }, 1);
        model.fit(&split);
        assert!(model.epoch_losses[5] < model.epoch_losses[0]);
        let mut rnd = RandomRecommender::new(9);
        rnd.fit(&split);
        let m = evaluate(&model, &split.test, 5, 150);
        let r = evaluate(&rnd, &split.test, 5, 150);
        assert!(m.ndcg > r.ndcg, "gru4rec {} vs random {}", m.ndcg, r.ndcg);
    }
}
