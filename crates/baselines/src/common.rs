//! Shared machinery for the neural sequential baselines: a `SeqEncoder`
//! trait (history → representation), a generic BCE + negative-sampling
//! trainer, and a [`SeqRecommender`] adapter.

use causer_core::SeqRecommender;
use causer_data::{EvalCase, LeaveLastOut, NegativeSampler, Step};
use causer_tensor::{Adam, Graph, Matrix, NodeId, Optimizer, ParallelTrainer, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters shared by all neural baselines.
#[derive(Clone, Debug)]
pub struct BaselineTrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f64,
    pub neg_samples: usize,
    pub max_history: usize,
    pub max_targets_per_user: usize,
    pub clip: f64,
    /// Adam weight decay (L2) — combats context-term overfitting on the
    /// small, sparse datasets.
    pub weight_decay: f64,
    pub seed: u64,
    /// Worker threads for data-parallel gradient computation. `None` defers
    /// to the `CAUSER_THREADS` environment variable (default 1 = serial,
    /// which is bitwise-identical to the historical single-threaded loop).
    pub threads: Option<usize>,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        BaselineTrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 5e-3,
            neg_samples: 4,
            max_history: 12,
            max_targets_per_user: 8,
            clip: 5.0,
            weight_decay: 1e-4,
            seed: 23,
            threads: None,
        }
    }
}

/// A sequence encoder: maps `(user, history)` to a `1 × d_e` representation
/// that is scored against output item embeddings by dot product.
///
/// `Sync` is required so encoders can be shared read-only across the
/// data-parallel worker threads (all current encoders are plain id structs).
pub trait SeqEncoder: Sync {
    /// Model name as reported in Table IV.
    fn label(&self) -> String;

    /// Build the representation node for a history prefix.
    fn repr(&self, g: &mut Graph, ps: &ParamSet, user: usize, history: &[Step]) -> NodeId;

    /// The output item-embedding parameter (`|V| × d_e`).
    fn out_emb(&self) -> ParamId;
}

/// Generic neural sequential recommender: an encoder plus its parameters.
pub struct NeuralRecommender<E: SeqEncoder> {
    pub encoder: E,
    pub params: ParamSet,
    pub cfg: BaselineTrainConfig,
    pub epoch_losses: Vec<f64>,
    /// Learnable per-item output bias (captures popularity).
    bias: causer_tensor::ParamId,
}

impl<E: SeqEncoder> NeuralRecommender<E> {
    pub fn new(encoder: E, mut params: ParamSet, cfg: BaselineTrainConfig) -> Self {
        let n = params.value(encoder.out_emb()).rows();
        let bias = params.add("out_bias", Matrix::zeros(n, 1));
        NeuralRecommender { encoder, params, cfg, epoch_losses: Vec::new(), bias }
    }
}

/// One target position within a user history: the step index and its
/// presampled candidate list (`npos` positives followed by negatives).
struct FitTarget {
    pos: usize,
    cands: Vec<usize>,
    npos: usize,
}

/// A user's presampled training work for one minibatch: everything a worker
/// thread needs so no RNG state crosses the shard boundary.
struct FitItem<'a> {
    user: usize,
    steps: &'a [Step],
    positions: Vec<FitTarget>,
}

impl<E: SeqEncoder> SeqRecommender for NeuralRecommender<E> {
    fn name(&self) -> String {
        self.encoder.label()
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sampler = NegativeSampler::from_interactions(&train_interactions(split));
        let mut opt = Adam::new(cfg.lr);
        opt.weight_decay = cfg.weight_decay;
        let mut order: Vec<usize> = (0..split.train.len()).collect();
        let mut trainer = ParallelTrainer::from_config(cfg.threads);

        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                // Negative sampling happens serially, in chunk order, so the
                // RNG stream is identical at any thread count.
                let mut items: Vec<FitItem<'_>> = Vec::new();
                let mut total_rows = 0usize;
                for &idx in chunk {
                    let hist = &split.train[idx];
                    if hist.steps.len() < 2 {
                        continue;
                    }
                    let first = if hist.steps.len() > cfg.max_targets_per_user {
                        hist.steps.len() - cfg.max_targets_per_user
                    } else {
                        1
                    };
                    let mut positions: Vec<FitTarget> = Vec::new();
                    for j in first.max(1)..hist.steps.len() {
                        let mut cands: Vec<usize> = hist.steps[j].clone();
                        let npos = cands.len();
                        cands.extend(sampler.sample_excluding(
                            &mut rng,
                            cfg.neg_samples * npos,
                            &hist.steps[j],
                        ));
                        total_rows += cands.len();
                        positions.push(FitTarget { pos: j, cands, npos });
                    }
                    if positions.is_empty() {
                        continue;
                    }
                    items.push(FitItem { user: hist.user, steps: &hist.steps, positions });
                }
                if total_rows == 0 {
                    continue;
                }

                let encoder = &self.encoder;
                let params = &self.params;
                let bias_id = self.bias;
                let out_id = self.encoder.out_emb();
                // Each shard computes its own mean BCE and seeds the reverse
                // sweep with `shard_rows / total_rows`, so the reduced
                // gradient equals the full-batch mean-loss gradient. With one
                // thread the shard is the whole batch (weight 1.0) and this
                // is exactly the historical serial step.
                let (batch_loss, mut gs) =
                    trainer.for_each_shard(&items, params, |g, gs, shard| {
                        let out_emb = g.param(params, out_id);
                        let bias = g.param(params, bias_id);
                        let mut logit_nodes: Vec<NodeId> = Vec::new();
                        let mut targets: Vec<f64> = Vec::new();
                        for item in shard {
                            for t in &item.positions {
                                let start = t.pos.saturating_sub(cfg.max_history);
                                let history = &item.steps[start..t.pos];
                                let repr = encoder.repr(g, params, item.user, history);
                                let sel = g.select_rows(out_emb, &t.cands);
                                let dot = g.matmul_nt(sel, repr); // c × 1
                                let b = g.select_rows(bias, &t.cands);
                                let logits = g.add(dot, b);
                                logit_nodes.push(logits);
                                targets.extend((0..t.cands.len()).map(|i| {
                                    if i < t.npos {
                                        1.0
                                    } else {
                                        0.0
                                    }
                                }));
                            }
                        }
                        let stacked = g.vstack(&logit_nodes);
                        let w = targets.len() as f64 / total_rows as f64;
                        let tmat = Matrix::from_vec(targets.len(), 1, targets);
                        let loss = g.bce_with_logits(stacked, &tmat);
                        let v = g.value(loss).item() * w;
                        g.backward_seeded(loss, gs, w);
                        v
                    });
                epoch_loss += batch_loss;
                batches += 1;
                gs.clip_global_norm(cfg.clip);
                opt.step(&mut self.params, &mut gs);
            }
            self.epoch_losses.push(if batches > 0 { epoch_loss / batches as f64 } else { 0.0 });
        }
    }

    fn scores(&self, case: &EvalCase) -> Vec<f64> {
        let cfg = &self.cfg;
        let start = case.history.len().saturating_sub(cfg.max_history);
        let history = &case.history[start..];
        if history.is_empty() {
            return vec![0.0; scores_len(&self.params, self.encoder.out_emb())];
        }
        let mut g = Graph::new();
        let repr = self.encoder.repr(&mut g, &self.params, case.user, history);
        let out = g.param(&self.params, self.encoder.out_emb());
        let dot = g.matmul_nt(out, repr); // |V| × 1
        let bias = g.param(&self.params, self.bias);
        let logits = g.add(dot, bias);
        g.value(logits).col(0)
    }
}

fn scores_len(ps: &ParamSet, out: ParamId) -> usize {
    ps.value(out).rows()
}

/// An `Interactions` view over the training split.
pub fn train_interactions(split: &LeaveLastOut) -> causer_data::Interactions {
    let mut seqs = vec![Vec::new(); split.num_users];
    for h in &split.train {
        seqs[h.user] = h.steps.clone();
    }
    causer_data::Interactions {
        num_users: split.num_users,
        num_items: split.num_items,
        sequences: seqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::init;

    /// Trivial encoder: mean of history item embeddings.
    struct MeanEncoder {
        emb: ParamId,
        out: ParamId,
    }

    impl SeqEncoder for MeanEncoder {
        fn label(&self) -> String {
            "Mean".into()
        }
        fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
            let emb = g.param(ps, self.emb);
            let all: Vec<usize> = history.iter().flatten().copied().collect();
            g.embed_bag(emb, &[all], true)
        }
        fn out_emb(&self) -> ParamId {
            self.out
        }
    }

    fn toy_split() -> LeaveLastOut {
        use causer_data::{simulate, DatasetKind, DatasetProfile};
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.005);
        simulate(&profile, 3).interactions.leave_last_out()
    }

    #[test]
    fn generic_trainer_reduces_loss() {
        let split = toy_split();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let emb = ps.add("emb", init::normal(&mut rng, split.num_items, 8, 0.1));
        let out = ps.add("out", init::normal(&mut rng, split.num_items, 8, 0.1));
        let cfg = BaselineTrainConfig { epochs: 5, ..Default::default() };
        let mut model = NeuralRecommender::new(MeanEncoder { emb, out }, ps, cfg);
        model.fit(&split);
        assert_eq!(model.epoch_losses.len(), 5);
        assert!(model.epoch_losses[4] < model.epoch_losses[0]);
        let scores = model.scores(&split.test[0]);
        assert_eq!(scores.len(), split.num_items);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
