//! Shared machinery for the neural sequential baselines: a `SeqEncoder`
//! trait (history → representation), a generic BCE + negative-sampling
//! trainer, and a [`SeqRecommender`] adapter.

use causer_core::SeqRecommender;
use causer_data::{EvalCase, LeaveLastOut, NegativeSampler, Step};
use causer_tensor::{Adam, GradStore, Graph, Matrix, NodeId, Optimizer, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters shared by all neural baselines.
#[derive(Clone, Debug)]
pub struct BaselineTrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f64,
    pub neg_samples: usize,
    pub max_history: usize,
    pub max_targets_per_user: usize,
    pub clip: f64,
    /// Adam weight decay (L2) — combats context-term overfitting on the
    /// small, sparse datasets.
    pub weight_decay: f64,
    pub seed: u64,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        BaselineTrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 5e-3,
            neg_samples: 4,
            max_history: 12,
            max_targets_per_user: 8,
            clip: 5.0,
            weight_decay: 1e-4,
            seed: 23,
        }
    }
}

/// A sequence encoder: maps `(user, history)` to a `1 × d_e` representation
/// that is scored against output item embeddings by dot product.
pub trait SeqEncoder {
    /// Model name as reported in Table IV.
    fn label(&self) -> String;

    /// Build the representation node for a history prefix.
    fn repr(&self, g: &mut Graph, ps: &ParamSet, user: usize, history: &[Step]) -> NodeId;

    /// The output item-embedding parameter (`|V| × d_e`).
    fn out_emb(&self) -> ParamId;
}

/// Generic neural sequential recommender: an encoder plus its parameters.
pub struct NeuralRecommender<E: SeqEncoder> {
    pub encoder: E,
    pub params: ParamSet,
    pub cfg: BaselineTrainConfig,
    pub epoch_losses: Vec<f64>,
    /// Learnable per-item output bias (captures popularity).
    bias: causer_tensor::ParamId,
}

impl<E: SeqEncoder> NeuralRecommender<E> {
    pub fn new(encoder: E, mut params: ParamSet, cfg: BaselineTrainConfig) -> Self {
        let n = params.value(encoder.out_emb()).rows();
        let bias = params.add("out_bias", Matrix::zeros(n, 1));
        NeuralRecommender { encoder, params, cfg, epoch_losses: Vec::new(), bias }
    }
}

impl<E: SeqEncoder> SeqRecommender for NeuralRecommender<E> {
    fn name(&self) -> String {
        self.encoder.label()
    }

    fn fit(&mut self, split: &LeaveLastOut) {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sampler = NegativeSampler::from_interactions(&train_interactions(split));
        let mut opt = Adam::new(cfg.lr);
        opt.weight_decay = cfg.weight_decay;
        let mut order: Vec<usize> = (0..split.train.len()).collect();

        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let mut g = Graph::new();
                let out_emb = g.param(&self.params, self.encoder.out_emb());
                let bias = g.param(&self.params, self.bias);
                let mut logit_nodes: Vec<NodeId> = Vec::new();
                let mut targets: Vec<f64> = Vec::new();
                for &idx in chunk {
                    let hist = &split.train[idx];
                    if hist.steps.len() < 2 {
                        continue;
                    }
                    let first = if hist.steps.len() > cfg.max_targets_per_user {
                        hist.steps.len() - cfg.max_targets_per_user
                    } else {
                        1
                    };
                    for j in first.max(1)..hist.steps.len() {
                        let start = j.saturating_sub(cfg.max_history);
                        let history = &hist.steps[start..j];
                        let repr = self.encoder.repr(&mut g, &self.params, hist.user, history);
                        let rt = g.transpose(repr); // d_e × 1
                        let mut cands: Vec<usize> = hist.steps[j].clone();
                        let npos = cands.len();
                        cands.extend(sampler.sample_excluding(
                            &mut rng,
                            cfg.neg_samples * npos,
                            &hist.steps[j],
                        ));
                        let sel = g.select_rows(out_emb, &cands);
                        let dot = g.matmul(sel, rt); // c × 1
                        let b = g.select_rows(bias, &cands);
                        let logits = g.add(dot, b);
                        logit_nodes.push(logits);
                        targets.extend(
                            (0..cands.len()).map(|i| if i < npos { 1.0 } else { 0.0 }),
                        );
                    }
                }
                if logit_nodes.is_empty() {
                    continue;
                }
                let stacked = g.vstack(&logit_nodes);
                let tmat = Matrix::from_vec(targets.len(), 1, targets);
                let loss = g.bce_with_logits(stacked, &tmat);
                epoch_loss += g.value(loss).item();
                batches += 1;
                let mut gs = GradStore::new(&self.params);
                g.backward(loss, &mut gs);
                drop(g);
                gs.clip_global_norm(cfg.clip);
                opt.step(&mut self.params, &mut gs);
            }
            self.epoch_losses.push(if batches > 0 { epoch_loss / batches as f64 } else { 0.0 });
        }
    }

    fn scores(&self, case: &EvalCase) -> Vec<f64> {
        let cfg = &self.cfg;
        let start = case.history.len().saturating_sub(cfg.max_history);
        let history = &case.history[start..];
        if history.is_empty() {
            return vec![0.0; scores_len(&self.params, self.encoder.out_emb())];
        }
        let mut g = Graph::new();
        let repr = self.encoder.repr(&mut g, &self.params, case.user, history);
        let out = g.param(&self.params, self.encoder.out_emb());
        let rt = g.transpose(repr);
        let dot = g.matmul(out, rt); // |V| × 1
        let bias = g.param(&self.params, self.bias);
        let logits = g.add(dot, bias);
        g.value(logits).col(0)
    }
}

fn scores_len(ps: &ParamSet, out: ParamId) -> usize {
    ps.value(out).rows()
}

/// An `Interactions` view over the training split.
pub fn train_interactions(split: &LeaveLastOut) -> causer_data::Interactions {
    let mut seqs = vec![Vec::new(); split.num_users];
    for h in &split.train {
        seqs[h.user] = h.steps.clone();
    }
    causer_data::Interactions {
        num_users: split.num_users,
        num_items: split.num_items,
        sequences: seqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_tensor::init;

    /// Trivial encoder: mean of history item embeddings.
    struct MeanEncoder {
        emb: ParamId,
        out: ParamId,
    }

    impl SeqEncoder for MeanEncoder {
        fn label(&self) -> String {
            "Mean".into()
        }
        fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
            let emb = g.param(ps, self.emb);
            let all: Vec<usize> = history.iter().flatten().copied().collect();
            g.embed_bag(emb, &[all], true)
        }
        fn out_emb(&self) -> ParamId {
            self.out
        }
    }

    fn toy_split() -> LeaveLastOut {
        use causer_data::{simulate, DatasetKind, DatasetProfile};
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.005);
        simulate(&profile, 3).interactions.leave_last_out()
    }

    #[test]
    fn generic_trainer_reduces_loss() {
        let split = toy_split();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let emb = ps.add("emb", init::normal(&mut rng, split.num_items, 8, 0.1));
        let out = ps.add("out", init::normal(&mut rng, split.num_items, 8, 0.1));
        let cfg = BaselineTrainConfig { epochs: 5, ..Default::default() };
        let mut model = NeuralRecommender::new(MeanEncoder { emb, out }, ps, cfg);
        model.fit(&split);
        assert_eq!(model.epoch_losses.len(), 5);
        assert!(model.epoch_losses[4] < model.epoch_losses[0]);
        let scores = model.scores(&split.test[0]);
        assert_eq!(scores.len(), split.num_items);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
