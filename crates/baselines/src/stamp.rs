//! STAMP (Liu et al., 2018): short-term attention/memory priority — no
//! recurrence; a trilinear attention over history item embeddings with the
//! session mean (`m_s`, long-term) and the last item (`m_t`, short-term),
//! combined through two MLPs and a Hadamard product.

use crate::common::{BaselineTrainConfig, NeuralRecommender, SeqEncoder};
use causer_data::Step;
use causer_tensor::{init, Graph, Matrix, NodeId, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct StampEncoder {
    emb: ParamId,
    out: ParamId,
    w1: ParamId,
    w2: ParamId,
    w3: ParamId,
    ba: ParamId,
    w0: ParamId,
    ws: ParamId,
    bs: ParamId,
    wt: ParamId,
    bt: ParamId,
}

impl StampEncoder {
    pub fn build(num_items: usize, dim: usize, seed: u64) -> (Self, ParamSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let emb = ps.add("emb", init::normal(&mut rng, num_items, dim, 0.1));
        let out = ps.add("out", init::normal(&mut rng, num_items, dim, 0.1));
        let w1 = ps.add("w1", init::xavier(&mut rng, dim, dim));
        let w2 = ps.add("w2", init::xavier(&mut rng, dim, dim));
        let w3 = ps.add("w3", init::xavier(&mut rng, dim, dim));
        let ba = ps.add("ba", Matrix::zeros(1, dim));
        let w0 = ps.add("w0", init::xavier(&mut rng, dim, 1));
        let ws = ps.add("ws", init::xavier(&mut rng, dim, dim));
        let bs = ps.add("bs", Matrix::zeros(1, dim));
        let wt = ps.add("wt", init::xavier(&mut rng, dim, dim));
        let bt = ps.add("bt", Matrix::zeros(1, dim));
        (StampEncoder { emb, out, w1, w2, w3, ba, w0, ws, bs, wt, bt }, ps)
    }
}

impl SeqEncoder for StampEncoder {
    fn label(&self) -> String {
        "STAMP".into()
    }

    fn repr(&self, g: &mut Graph, ps: &ParamSet, _user: usize, history: &[Step]) -> NodeId {
        let emb = g.param(ps, self.emb);
        // Per-step embeddings: multi-hot steps summed (as in the paper's
        // multi-item extension of the protocol).
        let bags: Vec<Vec<usize>> = history.to_vec();
        let x = g.embed_bag(emb, &bags, false); // T × d
        let t_len = history.len();
        // m_s: session mean; m_t: last step.
        let ones = g.constant(Matrix::full(1, t_len, 1.0 / t_len as f64));
        let m_s = g.matmul(ones, x); // 1 × d
        let m_t = g.select_rows(x, &[t_len - 1]); // 1 × d

        // a_i = w0^T sigmoid(x_i W1 + m_t W2 + m_s W3 + b)
        let w1 = g.param(ps, self.w1);
        let w2 = g.param(ps, self.w2);
        let w3 = g.param(ps, self.w3);
        let ba = g.param(ps, self.ba);
        let xw = g.matmul(x, w1); // T × d
        let tw = g.matmul(m_t, w2); // 1 × d
        let sw = g.matmul(m_s, w3); // 1 × d
        let tsw = g.add(tw, sw); // 1 × d
        let tswb = g.add(tsw, ba); // 1 × d (bias is 1×d too)
        let pre = g.add_row(xw, tswb); // T × d broadcast
        let act = g.sigmoid(pre);
        let w0 = g.param(ps, self.w0);
        let a = g.matmul(act, w0); // T × 1 (unnormalized, as in STAMP)
        let m_a = g.matmul_tn(a, x); // 1 × d

        // h_s = tanh(m_a Ws + bs); h_t = tanh(m_t Wt + bt); repr = h_s ∘ h_t
        let ws = g.param(ps, self.ws);
        let bs = g.param(ps, self.bs);
        let wt = g.param(ps, self.wt);
        let bt = g.param(ps, self.bt);
        let hs = g.matmul(m_a, ws);
        let hs = g.add(hs, bs);
        let hs = g.tanh(hs);
        let ht = g.matmul(m_t, wt);
        let ht = g.add(ht, bt);
        let ht = g.tanh(ht);
        g.mul(hs, ht)
    }

    fn out_emb(&self) -> ParamId {
        self.out
    }
}

/// Construct a ready-to-fit STAMP recommender.
pub fn stamp(
    num_items: usize,
    cfg: BaselineTrainConfig,
    seed: u64,
) -> NeuralRecommender<StampEncoder> {
    let (enc, ps) = StampEncoder::build(num_items, 24, seed);
    NeuralRecommender::new(enc, ps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causer_core::SeqRecommender;
    use causer_data::{simulate, DatasetKind, DatasetProfile};

    #[test]
    fn stamp_trains_and_scores() {
        let profile = DatasetProfile::paper(DatasetKind::Patio).scaled(0.008);
        let split = simulate(&profile, 14).interactions.leave_last_out();
        let mut model =
            stamp(split.num_items, BaselineTrainConfig { epochs: 3, ..Default::default() }, 4);
        model.fit(&split);
        assert!(model.epoch_losses[2] < model.epoch_losses[0]);
        let s = model.scores(&split.test[0]);
        assert_eq!(s.len(), split.num_items);
    }
}
