//! Explanation-quality metrics for §V-E of the paper.
//!
//! Each evaluation sample consists of a scored history (one score per
//! history position) and the set of positions labeled as true causes of the
//! target item. The paper selects the top-3 scored items and reports F1 and
//! NDCG against the labeled causes.

use crate::ranking::{f1_at, ndcg_at};
use std::collections::HashSet;

/// One labeled explanation sample: scores per history position and the
/// ground-truth causal positions.
#[derive(Clone, Debug)]
pub struct ExplanationSample {
    pub scores: Vec<f64>,
    pub true_causes: HashSet<usize>,
}

/// Aggregated explanation metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExplanationReport {
    pub f1: f64,
    pub ndcg: f64,
    pub num_samples: usize,
}

/// Evaluate explanation quality: take the `top_k` highest-scored history
/// positions of each sample and compare with the labeled causes.
pub fn evaluate_explanations(samples: &[ExplanationSample], top_k: usize) -> ExplanationReport {
    let mut f1 = 0.0;
    let mut ndcg = 0.0;
    let mut n = 0usize;
    for s in samples {
        if s.scores.is_empty() || s.true_causes.is_empty() {
            continue;
        }
        let ranked = top_indices(&s.scores, top_k);
        f1 += f1_at(&ranked, &s.true_causes);
        ndcg += ndcg_at(&ranked, &s.true_causes, top_k);
        n += 1;
    }
    let d = n.max(1) as f64;
    ExplanationReport { f1: f1 / d, ndcg: ndcg / d, num_samples: n }
}

/// Indices of the `k` largest scores, descending, ties broken by position.
pub fn top_indices(scores: &[f64], k: usize) -> Vec<usize> {
    causer_tensor_topk(scores, k)
}

fn causer_tensor_topk(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scores: &[f64], causes: &[usize]) -> ExplanationSample {
        ExplanationSample { scores: scores.to_vec(), true_causes: causes.iter().copied().collect() }
    }

    #[test]
    fn perfect_explanation() {
        let s = sample(&[0.9, 0.1, 0.8, 0.0], &[0, 2]);
        let r = evaluate_explanations(&[s], 2);
        assert_eq!(r.num_samples, 1);
        assert!((r.f1 - 1.0).abs() < 1e-12);
        assert!((r.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_explanation_scores_zero() {
        let s = sample(&[0.9, 0.1, 0.0], &[2]);
        let r = evaluate_explanations(&[s], 1);
        assert_eq!(r.f1, 0.0);
        assert_eq!(r.ndcg, 0.0);
    }

    #[test]
    fn partial_credit() {
        // top-3 of 5 positions; one of two causes found.
        let s = sample(&[0.9, 0.8, 0.7, 0.0, 0.1], &[0, 4]);
        let r = evaluate_explanations(&[s], 3);
        // precision 1/3, recall 1/2 -> F1 = 0.4
        assert!((r.f1 - 0.4).abs() < 1e-12);
        assert!(r.ndcg > 0.0 && r.ndcg < 1.0);
    }

    #[test]
    fn skips_unlabeled_or_empty_samples() {
        let good = sample(&[1.0], &[0]);
        let empty_scores = sample(&[], &[0]);
        let empty_truth = sample(&[1.0, 2.0], &[]);
        let r = evaluate_explanations(&[good, empty_scores, empty_truth], 3);
        assert_eq!(r.num_samples, 1);
        assert_eq!(r.f1, 1.0);
    }

    #[test]
    fn top_indices_ties_by_position() {
        assert_eq!(top_indices(&[0.5, 0.5, 0.9], 2), vec![2, 0]);
    }
}
