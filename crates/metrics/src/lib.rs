//! # causer-metrics
//!
//! Evaluation metrics for the Causer reproduction, implementing exactly the
//! formulas of §V-A ([`ranking`]: P/R/F1@Z, DCG/NDCG@Z, plus HR and MRR) and
//! the explanation evaluation protocol of §V-E ([`explanation`]).

pub mod diversity;
pub mod explanation;
pub mod ranking;

pub use diversity::{catalog_coverage, exposure_gini, intra_list_diversity};
pub use explanation::{evaluate_explanations, ExplanationReport, ExplanationSample};
pub use ranking::{RankingAccumulator, RankingReport};
