//! Beyond-accuracy metrics: catalog coverage, recommendation concentration
//! (Gini), and intra-list diversity — standard companions to F1/NDCG when
//! assessing whether a recommender has collapsed onto the popular head.

use std::collections::HashSet;

/// Fraction of the catalog that appears in at least one recommendation
/// list.
pub fn catalog_coverage(recommendations: &[Vec<usize>], num_items: usize) -> f64 {
    if num_items == 0 {
        return 0.0;
    }
    let unique: HashSet<usize> = recommendations.iter().flatten().copied().collect();
    unique.len() as f64 / num_items as f64
}

/// Gini coefficient of recommendation exposure across the catalog:
/// 0 = perfectly even exposure, →1 = all exposure on one item.
pub fn exposure_gini(recommendations: &[Vec<usize>], num_items: usize) -> f64 {
    if num_items == 0 {
        return 0.0;
    }
    let mut counts = vec![0.0f64; num_items];
    for rec in recommendations {
        for &i in rec {
            counts[i] += 1.0;
        }
    }
    let total: f64 = counts.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    counts.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
    let n = num_items as f64;
    let mut cum = 0.0;
    let mut weighted = 0.0;
    for (rank, &c) in counts.iter().enumerate() {
        cum += c;
        weighted += cum / total;
        let _ = rank;
    }
    // Gini = 1 − 2·B where B is the area under the Lorenz curve.
    1.0 - 2.0 * (weighted / n) + 1.0 / n
}

/// Mean intra-list diversity: average fraction of *distinct categories*
/// within each recommendation list, given a per-item category labeling
/// (e.g., ground-truth clusters).
pub fn intra_list_diversity(recommendations: &[Vec<usize>], categories: &[usize]) -> f64 {
    if recommendations.is_empty() {
        return 0.0;
    }
    let per_list: f64 = recommendations
        .iter()
        .filter(|r| !r.is_empty())
        .map(|rec| {
            let distinct: HashSet<usize> = rec.iter().map(|&i| categories[i]).collect();
            distinct.len() as f64 / rec.len() as f64
        })
        .sum();
    let lists = recommendations.iter().filter(|r| !r.is_empty()).count();
    if lists == 0 {
        0.0
    } else {
        per_list / lists as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_unique_items() {
        let recs = vec![vec![0, 1], vec![1, 2]];
        assert!((catalog_coverage(&recs, 10) - 0.3).abs() < 1e-12);
        assert_eq!(catalog_coverage(&[], 10), 0.0);
        assert_eq!(catalog_coverage(&recs, 0), 0.0);
    }

    #[test]
    fn gini_zero_for_even_exposure() {
        let recs = vec![vec![0], vec![1], vec![2], vec![3]];
        let g = exposure_gini(&recs, 4);
        assert!(g.abs() < 1e-12, "gini {g}");
    }

    #[test]
    fn gini_approaches_one_for_concentration() {
        // All exposure on one of many items.
        let recs: Vec<Vec<usize>> = (0..50).map(|_| vec![0]).collect();
        let g = exposure_gini(&recs, 100);
        assert!(g > 0.95, "gini {g}");
    }

    #[test]
    fn gini_monotone_in_concentration() {
        let even = vec![vec![0], vec![1], vec![2], vec![3]];
        let skewed = vec![vec![0], vec![0], vec![0], vec![3]];
        assert!(exposure_gini(&skewed, 4) > exposure_gini(&even, 4));
    }

    #[test]
    fn intra_list_diversity_bounds() {
        let categories = vec![0, 0, 1, 1, 2];
        // All same category.
        assert!((intra_list_diversity(&[vec![0, 1]], &categories) - 0.5).abs() < 1e-12);
        // All distinct categories.
        assert!((intra_list_diversity(&[vec![0, 2, 4]], &categories) - 1.0).abs() < 1e-12);
        // Mixed lists average.
        let d = intra_list_diversity(&[vec![0, 1], vec![0, 2, 4]], &categories);
        assert!((d - (0.5 + 1.0) / 2.0).abs() < 1e-12);
        assert_eq!(intra_list_diversity(&[], &categories), 0.0);
    }
}
