//! Top-Z ranking metrics exactly as defined in §V-A of the paper.
//!
//! `A_u` is the recommended set (size `Z`), `B_u` the ground-truth set. The
//! per-user quantities are
//!
//! ```text
//! P(u)@Z = |A ∩ B| / |A|          R(u)@Z = |A ∩ B| / |B|
//! F1@Z   = mean_u 2·P·R / (P+R)
//! DCG@Z  = Σ_i R(i)/log2(i+1)     NDCG@Z = mean_u DCG/IDCG
//! ```
//!
//! where `R(i) = 1` if the i-th recommended item is in `B_u`.

use std::collections::HashSet;

/// Per-user precision at Z. Empty recommendation list gives 0.
pub fn precision_at(recommended: &[usize], truth: &HashSet<usize>) -> f64 {
    if recommended.is_empty() {
        return 0.0;
    }
    let hits = recommended.iter().filter(|i| truth.contains(i)).count();
    hits as f64 / recommended.len() as f64
}

/// Per-user recall at Z. Empty truth set gives 0.
pub fn recall_at(recommended: &[usize], truth: &HashSet<usize>) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let hits = recommended.iter().filter(|i| truth.contains(i)).count();
    hits as f64 / truth.len() as f64
}

/// Per-user F1 at Z (harmonic mean of precision and recall; 0 if both 0).
pub fn f1_at(recommended: &[usize], truth: &HashSet<usize>) -> f64 {
    let p = precision_at(recommended, truth);
    let r = recall_at(recommended, truth);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Per-user DCG at Z with binary relevance.
pub fn dcg_at(recommended: &[usize], truth: &HashSet<usize>) -> f64 {
    recommended
        .iter()
        .enumerate()
        .map(|(i, item)| if truth.contains(item) { 1.0 / ((i + 2) as f64).log2() } else { 0.0 })
        .sum()
}

/// Ideal DCG: all `min(|truth|, z)` relevant items ranked first.
pub fn idcg_at(truth_size: usize, z: usize) -> f64 {
    (0..truth_size.min(z)).map(|i| 1.0 / ((i + 2) as f64).log2()).sum()
}

/// Per-user NDCG at Z. 0 when the truth set is empty.
pub fn ndcg_at(recommended: &[usize], truth: &HashSet<usize>, z: usize) -> f64 {
    let idcg = idcg_at(truth.len(), z);
    if idcg == 0.0 {
        0.0
    } else {
        dcg_at(recommended, truth) / idcg
    }
}

/// Per-user hit rate: 1 if any recommended item is relevant.
pub fn hit_at(recommended: &[usize], truth: &HashSet<usize>) -> f64 {
    if recommended.iter().any(|i| truth.contains(i)) {
        1.0
    } else {
        0.0
    }
}

/// Per-user reciprocal rank of the first relevant item (0 if none).
pub fn mrr_at(recommended: &[usize], truth: &HashSet<usize>) -> f64 {
    recommended.iter().position(|i| truth.contains(i)).map_or(0.0, |p| 1.0 / (p + 1) as f64)
}

/// Aggregated evaluation over many users.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankingReport {
    pub f1: f64,
    pub ndcg: f64,
    pub precision: f64,
    pub recall: f64,
    pub hit_rate: f64,
    pub mrr: f64,
    pub num_users: usize,
}

/// Accumulates per-user metrics and averages them (macro-average over users,
/// as in the paper's formulas).
#[derive(Default)]
pub struct RankingAccumulator {
    f1: f64,
    ndcg: f64,
    precision: f64,
    recall: f64,
    hit: f64,
    mrr: f64,
    n: usize,
    z: usize,
}

impl RankingAccumulator {
    pub fn new(z: usize) -> Self {
        RankingAccumulator { z, ..Default::default() }
    }

    /// Add one user's recommendation list (truncated to Z) and truth set.
    pub fn add(&mut self, recommended: &[usize], truth: &HashSet<usize>) {
        let rec = &recommended[..recommended.len().min(self.z)];
        self.f1 += f1_at(rec, truth);
        self.ndcg += ndcg_at(rec, truth, self.z);
        self.precision += precision_at(rec, truth);
        self.recall += recall_at(rec, truth);
        self.hit += hit_at(rec, truth);
        self.mrr += mrr_at(rec, truth);
        self.n += 1;
    }

    pub fn report(&self) -> RankingReport {
        let n = self.n.max(1) as f64;
        RankingReport {
            f1: self.f1 / n,
            ndcg: self.ndcg / n,
            precision: self.precision / n,
            recall: self.recall / n,
            hit_rate: self.hit / n,
            mrr: self.mrr / n,
            num_users: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(items: &[usize]) -> HashSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn precision_recall_hand_computed() {
        let rec = vec![1, 2, 3, 4, 5];
        let t = truth(&[2, 5, 9]);
        assert!((precision_at(&rec, &t) - 2.0 / 5.0).abs() < 1e-12);
        assert!((recall_at(&rec, &t) - 2.0 / 3.0).abs() < 1e-12);
        let f1 = f1_at(&rec, &t);
        let expected = 2.0 * (0.4 * (2.0 / 3.0)) / (0.4 + 2.0 / 3.0);
        assert!((f1 - expected).abs() < 1e-12);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let rec = vec![7, 8];
        let t = truth(&[7, 8]);
        assert_eq!(f1_at(&rec, &t), 1.0);
        assert_eq!(ndcg_at(&rec, &t, 2), 1.0);
        assert_eq!(hit_at(&rec, &t), 1.0);
        assert_eq!(mrr_at(&rec, &t), 1.0);
    }

    #[test]
    fn no_hits_scores_zero() {
        let rec = vec![1, 2, 3];
        let t = truth(&[4]);
        assert_eq!(f1_at(&rec, &t), 0.0);
        assert_eq!(ndcg_at(&rec, &t, 3), 0.0);
        assert_eq!(mrr_at(&rec, &t), 0.0);
    }

    #[test]
    fn dcg_discounts_by_position() {
        let t = truth(&[9]);
        // Hit at rank 1 vs rank 3.
        let first = dcg_at(&[9, 1, 2], &t);
        let third = dcg_at(&[1, 2, 9], &t);
        assert!((first - 1.0).abs() < 1e-12);
        assert!((third - 1.0 / 4.0f64.log2()).abs() < 1e-12);
        assert!(first > third);
    }

    #[test]
    fn ndcg_with_multiitem_truth() {
        // Truth of 2 items; hits at positions 1 and 3 out of Z=3.
        let t = truth(&[10, 20]);
        let rec = vec![10, 5, 20];
        let dcg = 1.0 + 1.0 / 4.0f64.log2();
        let idcg = 1.0 + 1.0 / 3.0f64.log2();
        assert!((ndcg_at(&rec, &t, 3) - dcg / idcg).abs() < 1e-12);
    }

    #[test]
    fn mrr_positions() {
        let t = truth(&[3]);
        assert_eq!(mrr_at(&[3, 1, 2], &t), 1.0);
        assert_eq!(mrr_at(&[1, 3, 2], &t), 0.5);
        assert!((mrr_at(&[1, 2, 3], &t) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_macro_averages() {
        let mut acc = RankingAccumulator::new(2);
        acc.add(&[1, 2], &truth(&[1, 2])); // perfect: f1 = 1
        acc.add(&[3, 4], &truth(&[9])); // miss: f1 = 0
        let r = acc.report();
        assert_eq!(r.num_users, 2);
        assert!((r.f1 - 0.5).abs() < 1e-12);
        assert!((r.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulator_truncates_to_z() {
        let mut acc = RankingAccumulator::new(1);
        acc.add(&[5, 1], &truth(&[1])); // only first item counts
        let r = acc.report();
        assert_eq!(r.f1, 0.0);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert_eq!(precision_at(&[], &truth(&[1])), 0.0);
        assert_eq!(recall_at(&[1], &truth(&[])), 0.0);
        assert_eq!(ndcg_at(&[], &truth(&[]), 5), 0.0);
        let acc = RankingAccumulator::new(5);
        let r = acc.report();
        assert_eq!(r.num_users, 0);
        assert_eq!(r.f1, 0.0);
    }
}
