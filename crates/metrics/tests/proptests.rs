//! Property tests: metric bounds and consistency relations.

use causer_metrics::ranking::*;
use proptest::prelude::*;
use std::collections::HashSet;

fn rec_and_truth() -> impl Strategy<Value = (Vec<usize>, HashSet<usize>)> {
    (
        prop::collection::vec(0usize..50, 0..10).prop_map(|v| {
            // Recommendation lists are duplicate-free; keep first occurrences.
            let mut seen = HashSet::new();
            v.into_iter().filter(|x| seen.insert(*x)).collect::<Vec<_>>()
        }),
        prop::collection::hash_set(0usize..50, 0..8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_metrics_bounded((rec, truth) in rec_and_truth()) {
        for m in [
            precision_at(&rec, &truth),
            recall_at(&rec, &truth),
            f1_at(&rec, &truth),
            ndcg_at(&rec, &truth, 5),
            hit_at(&rec, &truth),
            mrr_at(&rec, &truth),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&m), "metric {m} out of range");
        }
    }

    #[test]
    fn f1_is_harmonic_mean((rec, truth) in rec_and_truth()) {
        let p = precision_at(&rec, &truth);
        let r = recall_at(&rec, &truth);
        let f = f1_at(&rec, &truth);
        if p + r > 0.0 {
            prop_assert!((f - 2.0 * p * r / (p + r)).abs() < 1e-12);
        } else {
            prop_assert_eq!(f, 0.0);
        }
        // F1 between min and max of P and R.
        prop_assert!(f <= p.max(r) + 1e-12);
        prop_assert!(f + 1e-12 >= p.min(r) || f == 0.0);
    }

    #[test]
    fn hit_iff_recall_positive((rec, truth) in rec_and_truth()) {
        let h = hit_at(&rec, &truth);
        let r = recall_at(&rec, &truth);
        if !truth.is_empty() {
            prop_assert_eq!(h > 0.0, r > 0.0);
        }
    }

    #[test]
    fn dcg_no_greater_than_idcg((rec, truth) in rec_and_truth()) {
        let z = rec.len();
        prop_assert!(dcg_at(&rec, &truth) <= idcg_at(truth.len(), z.max(1)) + 1e-12);
    }

    #[test]
    fn promoting_a_hit_never_hurts_ndcg(truth in prop::collection::hash_set(0usize..20, 1..5)) {
        // Build a list with one hit somewhere and slide it earlier.
        let hit_item = *truth.iter().next().unwrap();
        let fillers: Vec<usize> = (20..24).collect();
        let mut prev = 0.0;
        for pos in (0..5).rev() {
            let mut rec = fillers.clone();
            rec.insert(pos.min(rec.len()), hit_item);
            let n = ndcg_at(&rec[..5.min(rec.len())], &truth, 5);
            prop_assert!(n + 1e-12 >= prev, "moving hit earlier reduced ndcg");
            prev = n;
        }
    }

    #[test]
    fn accumulator_average_of_singles(samples in prop::collection::vec(rec_and_truth(), 1..10)) {
        let mut acc = RankingAccumulator::new(5);
        let mut manual_f1 = 0.0;
        for (rec, truth) in &samples {
            acc.add(rec, truth);
            let r = &rec[..rec.len().min(5)];
            manual_f1 += f1_at(r, truth);
        }
        let rep = acc.report();
        prop_assert_eq!(rep.num_users, samples.len());
        prop_assert!((rep.f1 - manual_f1 / samples.len() as f64).abs() < 1e-12);
    }
}
