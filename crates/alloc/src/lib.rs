//! `causer-alloc` — a counting allocator shim for allocation-regression
//! gates.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and bumps **per-thread**
//! counters on every heap operation. A test or bench binary installs it as
//! its `#[global_allocator]` and then brackets the code under measurement
//! with [`measure`], which returns the [`Snapshot`] delta for the calling
//! thread only — the libtest harness, other test threads, and background
//! workers cannot pollute the count.
//!
//! The serving tier's steady-state contract ("zero heap allocations per
//! warm request") is enforced this way by `crates/serve/tests/alloc_gate.rs`
//! and re-measured by the `serve_incremental` bench's `steady_state_alloc`
//! section. The shim itself never allocates: counters are `const`-init
//! thread-locals (no lazy boxing), and every hook is a couple of `Cell`
//! bumps around the `System` call.
//!
//! Counting is thread-local by design. If the measured region hands work to
//! other threads, their allocations are *not* attributed to the measuring
//! thread — gates that care must drive the single-threaded entry points
//! (the serve gate pins `threads: 1` for exactly this reason).

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Calls to `alloc`/`alloc_zeroed` on this thread.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Calls to `realloc` on this thread (growth of an existing block —
    /// counted separately because a "zero new blocks" gate still wants to
    /// see a `Vec` quietly doubling).
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Calls to `dealloc` on this thread.
    static FREES: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by `alloc`/`alloc_zeroed`/`realloc` on this thread.
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bump a thread-local counter, silently skipping during thread teardown
/// (TLS may already be destroyed when late frees run; losing those counts
/// is fine — `measure` only ever runs on a live thread).
fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>, by: u64) {
    let _ = cell.try_with(|c| c.set(c.get().wrapping_add(by)));
}

/// A `#[global_allocator]` that delegates to [`System`] and counts every
/// heap operation in per-thread tallies readable through [`Snapshot`].
pub struct CountingAlloc;

// The GlobalAlloc contract is inherently unsafe to implement; this shim
// forwards every call verbatim to std's System allocator and only adds
// Cell bumps, so System's safety argument carries over unchanged.
// causer-lint: allow(no-unsafe-outside-simd)
unsafe impl GlobalAlloc for CountingAlloc {
    // causer-lint: allow(no-unsafe-outside-simd)
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS, 1);
        bump(&BYTES, layout.size() as u64);
        System.alloc(layout)
    }

    // causer-lint: allow(no-unsafe-outside-simd)
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS, 1);
        bump(&BYTES, layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    // causer-lint: allow(no-unsafe-outside-simd)
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump(&FREES, 1);
        System.dealloc(ptr, layout)
    }

    // causer-lint: allow(no-unsafe-outside-simd)
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(&REALLOCS, 1);
        bump(&BYTES, new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time (or, via [`Snapshot::delta_since`], an interval) view of
/// the calling thread's allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `alloc` + `alloc_zeroed` calls (new heap blocks).
    pub allocs: u64,
    /// `realloc` calls (in-place or moving growth of existing blocks).
    pub reallocs: u64,
    /// `dealloc` calls.
    pub frees: u64,
    /// Bytes requested across `alloc`/`alloc_zeroed`/`realloc`.
    pub bytes: u64,
}

impl Snapshot {
    /// The calling thread's cumulative counters right now.
    pub fn current() -> Snapshot {
        Snapshot {
            allocs: ALLOCS.with(Cell::get),
            reallocs: REALLOCS.with(Cell::get),
            frees: FREES.with(Cell::get),
            bytes: BYTES.with(Cell::get),
        }
    }

    /// The interval delta from `earlier` (an older [`Snapshot::current`])
    /// to `self`.
    pub fn delta_since(self, earlier: Snapshot) -> Snapshot {
        Snapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            reallocs: self.reallocs.wrapping_sub(earlier.reallocs),
            frees: self.frees.wrapping_sub(earlier.frees),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }

    /// Every heap operation that obtained or grew memory (`allocs +
    /// reallocs`) — the quantity a "zero allocations per request" gate
    /// asserts on.
    pub fn acquisitions(self) -> u64 {
        self.allocs.wrapping_add(self.reallocs)
    }
}

/// Run `f` and return its result together with the calling thread's
/// allocation delta across the call.
///
/// Only meaningful when [`CountingAlloc`] is installed as the binary's
/// `#[global_allocator]`; under any other allocator the delta is all
/// zeros (the counters never move), which would make a zero-alloc gate
/// pass vacuously — gates should first assert the shim is live (e.g.
/// [`measure`] a `Vec` push and require a nonzero count).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    let before = Snapshot::current();
    let out = f();
    (out, Snapshot::current().delta_since(before))
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_fresh_allocation() {
        let (v, delta) = measure(|| Vec::<u8>::with_capacity(4096));
        assert!(delta.allocs >= 1, "fresh Vec must allocate: {delta:?}");
        assert!(delta.bytes >= 4096, "requested bytes are tallied: {delta:?}");
        drop(v);
    }

    #[test]
    fn pure_arithmetic_is_allocation_free() {
        let (sum, delta) = measure(|| (0u64..1000).map(|i| i * i).sum::<u64>());
        assert_eq!(sum, 332_833_500);
        assert_eq!(delta.acquisitions(), 0, "no heap traffic expected: {delta:?}");
        assert_eq!(delta.frees, 0);
    }

    #[test]
    fn growth_shows_up_as_realloc_or_alloc() {
        let mut v: Vec<u64> = Vec::with_capacity(4);
        let (_, delta) = measure(|| {
            for i in 0..1024u64 {
                v.push(i);
            }
        });
        assert!(delta.acquisitions() >= 1, "growing past capacity must acquire: {delta:?}");
    }

    #[test]
    fn reusing_capacity_is_allocation_free() {
        let mut v: Vec<u64> = Vec::with_capacity(1024);
        let (_, delta) = measure(|| {
            for round in 0..8 {
                v.clear();
                for i in 0..1024u64 {
                    v.push(i + round);
                }
            }
        });
        assert_eq!(delta.acquisitions(), 0, "clear+push within capacity: {delta:?}");
    }

    #[test]
    fn frees_are_counted() {
        let v: Vec<u8> = Vec::with_capacity(64);
        let (_, delta) = measure(|| drop(v));
        assert!(delta.frees >= 1, "dropping a Vec must free: {delta:?}");
        assert_eq!(delta.acquisitions(), 0);
    }

    #[test]
    fn deltas_are_per_thread() {
        let before = Snapshot::current();
        std::thread::scope(|s| {
            s.spawn(|| {
                let big: Vec<u8> = Vec::with_capacity(1 << 16);
                drop(big);
            });
        });
        let delta = Snapshot::current().delta_since(before);
        // The spawned thread's 64 KiB acquisition lands on *its* tally;
        // the scope machinery itself may allocate a little here, so assert
        // on bytes staying far under the worker's traffic rather than zero.
        assert!(delta.bytes < 1 << 15, "worker-thread bytes leaked into ours: {delta:?}");
    }
}
