/root/repo/target/release/examples/quickstart-c9c717cffbae19b8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c9c717cffbae19b8: examples/quickstart.rs

examples/quickstart.rs:
