/root/repo/target/release/examples/compare_baselines-8574fb5521fa5528.d: examples/compare_baselines.rs

/root/repo/target/release/examples/compare_baselines-8574fb5521fa5528: examples/compare_baselines.rs

examples/compare_baselines.rs:
