/root/repo/target/release/examples/next_basket-9fd4ad53acf1c13f.d: examples/next_basket.rs

/root/repo/target/release/examples/next_basket-9fd4ad53acf1c13f: examples/next_basket.rs

examples/next_basket.rs:
