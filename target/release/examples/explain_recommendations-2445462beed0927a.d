/root/repo/target/release/examples/explain_recommendations-2445462beed0927a.d: examples/explain_recommendations.rs

/root/repo/target/release/examples/explain_recommendations-2445462beed0927a: examples/explain_recommendations.rs

examples/explain_recommendations.rs:
