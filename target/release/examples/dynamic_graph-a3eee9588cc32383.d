/root/repo/target/release/examples/dynamic_graph-a3eee9588cc32383.d: examples/dynamic_graph.rs

/root/repo/target/release/examples/dynamic_graph-a3eee9588cc32383: examples/dynamic_graph.rs

examples/dynamic_graph.rs:
