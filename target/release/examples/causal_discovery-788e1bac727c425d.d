/root/repo/target/release/examples/causal_discovery-788e1bac727c425d.d: examples/causal_discovery.rs

/root/repo/target/release/examples/causal_discovery-788e1bac727c425d: examples/causal_discovery.rs

examples/causal_discovery.rs:
