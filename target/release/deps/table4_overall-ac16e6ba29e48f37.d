/root/repo/target/release/deps/table4_overall-ac16e6ba29e48f37.d: crates/eval/src/bin/table4_overall.rs

/root/repo/target/release/deps/table4_overall-ac16e6ba29e48f37: crates/eval/src/bin/table4_overall.rs

crates/eval/src/bin/table4_overall.rs:
