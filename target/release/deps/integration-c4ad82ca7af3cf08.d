/root/repo/target/release/deps/integration-c4ad82ca7af3cf08.d: crates/baselines/tests/integration.rs

/root/repo/target/release/deps/integration-c4ad82ca7af3cf08: crates/baselines/tests/integration.rs

crates/baselines/tests/integration.rs:
