/root/repo/target/release/deps/table5_ablation-90280406b6886bc0.d: crates/eval/src/bin/table5_ablation.rs

/root/repo/target/release/deps/table5_ablation-90280406b6886bc0: crates/eval/src/bin/table5_ablation.rs

crates/eval/src/bin/table5_ablation.rs:
