/root/repo/target/release/deps/causer-9abdd31efa5f03af.d: src/lib.rs

/root/repo/target/release/deps/causer-9abdd31efa5f03af: src/lib.rs

src/lib.rs:
