/root/repo/target/release/deps/proptests-99ef5200e3751b00.d: crates/causal/tests/proptests.rs

/root/repo/target/release/deps/proptests-99ef5200e3751b00: crates/causal/tests/proptests.rs

crates/causal/tests/proptests.rs:
