/root/repo/target/release/deps/fig5_epsilon-68d42086a153c16b.d: crates/eval/src/bin/fig5_epsilon.rs

/root/repo/target/release/deps/fig5_epsilon-68d42086a153c16b: crates/eval/src/bin/fig5_epsilon.rs

crates/eval/src/bin/fig5_epsilon.rs:
