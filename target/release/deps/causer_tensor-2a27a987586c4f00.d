/root/repo/target/release/deps/causer_tensor-2a27a987586c4f00.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

/root/repo/target/release/deps/libcauser_tensor-2a27a987586c4f00.rlib: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

/root/repo/target/release/deps/libcauser_tensor-2a27a987586c4f00.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/param.rs:
