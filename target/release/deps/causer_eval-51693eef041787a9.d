/root/repo/target/release/deps/causer_eval-51693eef041787a9.d: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs

/root/repo/target/release/deps/causer_eval-51693eef041787a9: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs

crates/eval/src/lib.rs:
crates/eval/src/config.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/beyond_accuracy.rs:
crates/eval/src/experiments/falsification.rs:
crates/eval/src/experiments/efficiency.rs:
crates/eval/src/experiments/fig3.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/grid_search.rs:
crates/eval/src/experiments/identifiability.rs:
crates/eval/src/experiments/sweeps.rs:
crates/eval/src/experiments/table2.rs:
crates/eval/src/experiments/table4.rs:
crates/eval/src/experiments/table5.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/tables.rs:
