/root/repo/target/release/deps/table2_stats-efdb15403422c371.d: crates/eval/src/bin/table2_stats.rs

/root/repo/target/release/deps/table2_stats-efdb15403422c371: crates/eval/src/bin/table2_stats.rs

crates/eval/src/bin/table2_stats.rs:
