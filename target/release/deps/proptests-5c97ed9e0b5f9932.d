/root/repo/target/release/deps/proptests-5c97ed9e0b5f9932.d: crates/tensor/tests/proptests.rs

/root/repo/target/release/deps/proptests-5c97ed9e0b5f9932: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
