/root/repo/target/release/deps/identifiability-a96f29c36a1cc473.d: crates/eval/src/bin/identifiability.rs

/root/repo/target/release/deps/identifiability-a96f29c36a1cc473: crates/eval/src/bin/identifiability.rs

crates/eval/src/bin/identifiability.rs:
