/root/repo/target/release/deps/falsification-9e727ef5ad10a38b.d: crates/eval/src/bin/falsification.rs

/root/repo/target/release/deps/falsification-9e727ef5ad10a38b: crates/eval/src/bin/falsification.rs

crates/eval/src/bin/falsification.rs:
