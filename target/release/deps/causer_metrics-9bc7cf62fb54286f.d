/root/repo/target/release/deps/causer_metrics-9bc7cf62fb54286f.d: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

/root/repo/target/release/deps/causer_metrics-9bc7cf62fb54286f: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

crates/metrics/src/lib.rs:
crates/metrics/src/diversity.rs:
crates/metrics/src/explanation.rs:
crates/metrics/src/ranking.rs:
