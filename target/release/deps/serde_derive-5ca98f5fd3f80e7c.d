/root/repo/target/release/deps/serde_derive-5ca98f5fd3f80e7c.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5ca98f5fd3f80e7c.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
