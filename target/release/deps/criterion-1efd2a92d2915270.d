/root/repo/target/release/deps/criterion-1efd2a92d2915270.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1efd2a92d2915270.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1efd2a92d2915270.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
