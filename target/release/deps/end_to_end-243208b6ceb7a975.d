/root/repo/target/release/deps/end_to_end-243208b6ceb7a975.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-243208b6ceb7a975: tests/end_to_end.rs

tests/end_to_end.rs:
