/root/repo/target/release/deps/grid_search-a1cee6eb6e620f07.d: crates/eval/src/bin/grid_search.rs

/root/repo/target/release/deps/grid_search-a1cee6eb6e620f07: crates/eval/src/bin/grid_search.rs

crates/eval/src/bin/grid_search.rs:
