/root/repo/target/release/deps/proptests-d001cb87ac467d8e.d: crates/data/tests/proptests.rs

/root/repo/target/release/deps/proptests-d001cb87ac467d8e: crates/data/tests/proptests.rs

crates/data/tests/proptests.rs:
