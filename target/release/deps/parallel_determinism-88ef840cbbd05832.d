/root/repo/target/release/deps/parallel_determinism-88ef840cbbd05832.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-88ef840cbbd05832: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
