/root/repo/target/release/deps/causer_baselines-e5079c57a0af319a.d: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs

/root/repo/target/release/deps/causer_baselines-e5079c57a0af319a: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bpr.rs:
crates/baselines/src/common.rs:
crates/baselines/src/gru4rec.rs:
crates/baselines/src/narm.rs:
crates/baselines/src/ncf.rs:
crates/baselines/src/sasrec.rs:
crates/baselines/src/stamp.rs:
crates/baselines/src/vtrnn.rs:
