/root/repo/target/release/deps/micro-870c830fc5807033.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-870c830fc5807033: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
