/root/repo/target/release/deps/fig6_temperature-89e95790f6ac3aea.d: crates/eval/src/bin/fig6_temperature.rs

/root/repo/target/release/deps/fig6_temperature-89e95790f6ac3aea: crates/eval/src/bin/fig6_temperature.rs

crates/eval/src/bin/fig6_temperature.rs:
