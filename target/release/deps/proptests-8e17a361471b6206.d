/root/repo/target/release/deps/proptests-8e17a361471b6206.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-8e17a361471b6206: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
