/root/repo/target/release/deps/fig8_cases-99479462bfc35729.d: crates/eval/src/bin/fig8_cases.rs

/root/repo/target/release/deps/fig8_cases-99479462bfc35729: crates/eval/src/bin/fig8_cases.rs

crates/eval/src/bin/fig8_cases.rs:
