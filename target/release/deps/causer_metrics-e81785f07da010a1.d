/root/repo/target/release/deps/causer_metrics-e81785f07da010a1.d: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

/root/repo/target/release/deps/libcauser_metrics-e81785f07da010a1.rlib: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

/root/repo/target/release/deps/libcauser_metrics-e81785f07da010a1.rmeta: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

crates/metrics/src/lib.rs:
crates/metrics/src/diversity.rs:
crates/metrics/src/explanation.rs:
crates/metrics/src/ranking.rs:
