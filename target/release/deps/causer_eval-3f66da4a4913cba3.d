/root/repo/target/release/deps/causer_eval-3f66da4a4913cba3.d: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs

/root/repo/target/release/deps/libcauser_eval-3f66da4a4913cba3.rlib: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs

/root/repo/target/release/deps/libcauser_eval-3f66da4a4913cba3.rmeta: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs

crates/eval/src/lib.rs:
crates/eval/src/config.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/beyond_accuracy.rs:
crates/eval/src/experiments/falsification.rs:
crates/eval/src/experiments/efficiency.rs:
crates/eval/src/experiments/fig3.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/grid_search.rs:
crates/eval/src/experiments/identifiability.rs:
crates/eval/src/experiments/sweeps.rs:
crates/eval/src/experiments/table2.rs:
crates/eval/src/experiments/table4.rs:
crates/eval/src/experiments/table5.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/tables.rs:
