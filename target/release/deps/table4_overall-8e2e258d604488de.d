/root/repo/target/release/deps/table4_overall-8e2e258d604488de.d: crates/eval/src/bin/table4_overall.rs

/root/repo/target/release/deps/table4_overall-8e2e258d604488de: crates/eval/src/bin/table4_overall.rs

crates/eval/src/bin/table4_overall.rs:
