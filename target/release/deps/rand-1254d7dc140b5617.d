/root/repo/target/release/deps/rand-1254d7dc140b5617.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-1254d7dc140b5617.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-1254d7dc140b5617.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
