/root/repo/target/release/deps/fig3_seqlen-6e25da8b120ae6b2.d: crates/eval/src/bin/fig3_seqlen.rs

/root/repo/target/release/deps/fig3_seqlen-6e25da8b120ae6b2: crates/eval/src/bin/fig3_seqlen.rs

crates/eval/src/bin/fig3_seqlen.rs:
