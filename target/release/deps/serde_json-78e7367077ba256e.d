/root/repo/target/release/deps/serde_json-78e7367077ba256e.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-78e7367077ba256e.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-78e7367077ba256e.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
