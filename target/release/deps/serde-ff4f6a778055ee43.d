/root/repo/target/release/deps/serde-ff4f6a778055ee43.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ff4f6a778055ee43.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ff4f6a778055ee43.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
