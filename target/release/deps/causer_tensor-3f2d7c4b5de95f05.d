/root/repo/target/release/deps/causer_tensor-3f2d7c4b5de95f05.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs

/root/repo/target/release/deps/causer_tensor-3f2d7c4b5de95f05: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
