/root/repo/target/release/deps/causer_bench-cbfdf4a20cd767e9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/causer_bench-cbfdf4a20cd767e9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
