/root/repo/target/release/deps/graph_ops-07a0613a018590e5.d: crates/tensor/tests/graph_ops.rs

/root/repo/target/release/deps/graph_ops-07a0613a018590e5: crates/tensor/tests/graph_ops.rs

crates/tensor/tests/graph_ops.rs:
