/root/repo/target/release/deps/efficiency-541fd30310139dbc.d: crates/eval/src/bin/efficiency.rs

/root/repo/target/release/deps/efficiency-541fd30310139dbc: crates/eval/src/bin/efficiency.rs

crates/eval/src/bin/efficiency.rs:
