/root/repo/target/release/deps/causer_bench-74ee5b50682e31a7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcauser_bench-74ee5b50682e31a7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcauser_bench-74ee5b50682e31a7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
