/root/repo/target/release/deps/causer-5088544401b4c468.d: src/lib.rs

/root/repo/target/release/deps/libcauser-5088544401b4c468.rlib: src/lib.rs

/root/repo/target/release/deps/libcauser-5088544401b4c468.rmeta: src/lib.rs

src/lib.rs:
