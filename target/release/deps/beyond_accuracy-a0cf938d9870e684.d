/root/repo/target/release/deps/beyond_accuracy-a0cf938d9870e684.d: crates/eval/src/bin/beyond_accuracy.rs

/root/repo/target/release/deps/beyond_accuracy-a0cf938d9870e684: crates/eval/src/bin/beyond_accuracy.rs

crates/eval/src/bin/beyond_accuracy.rs:
