/root/repo/target/release/deps/causer_data-fca79384b20dbb5c.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs

/root/repo/target/release/deps/libcauser_data-fca79384b20dbb5c.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs

/root/repo/target/release/deps/libcauser_data-fca79384b20dbb5c.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/explanation.rs:
crates/data/src/features.rs:
crates/data/src/persistence.rs:
crates/data/src/profiles.rs:
crates/data/src/sampling.rs:
crates/data/src/simulator.rs:
crates/data/src/stats.rs:
