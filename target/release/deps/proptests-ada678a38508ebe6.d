/root/repo/target/release/deps/proptests-ada678a38508ebe6.d: crates/metrics/tests/proptests.rs

/root/repo/target/release/deps/proptests-ada678a38508ebe6: crates/metrics/tests/proptests.rs

crates/metrics/tests/proptests.rs:
