/root/repo/target/release/deps/causer_core-90593226972cec84.d: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs

/root/repo/target/release/deps/libcauser_core-90593226972cec84.rlib: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs

/root/repo/target/release/deps/libcauser_core-90593226972cec84.rmeta: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/attention.rs:
crates/core/src/causal_graph.rs:
crates/core/src/causer_rec.rs:
crates/core/src/clustering.rs:
crates/core/src/dynamic.rs:
crates/core/src/explain.rs:
crates/core/src/model.rs:
crates/core/src/persistence.rs:
crates/core/src/recommender.rs:
crates/core/src/rnn.rs:
crates/core/src/train.rs:
crates/core/src/variants.rs:
