/root/repo/target/release/deps/causer_causal-32bc4c69d2eec5a3.d: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

/root/repo/target/release/deps/causer_causal-32bc4c69d2eec5a3: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

crates/causal/src/lib.rs:
crates/causal/src/dag.rs:
crates/causal/src/graph_gen.rs:
crates/causal/src/mec.rs:
crates/causal/src/notears.rs:
crates/causal/src/pc.rs:
crates/causal/src/shd.rs:
crates/causal/src/stability.rs:
