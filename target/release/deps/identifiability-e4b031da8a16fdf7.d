/root/repo/target/release/deps/identifiability-e4b031da8a16fdf7.d: tests/identifiability.rs

/root/repo/target/release/deps/identifiability-e4b031da8a16fdf7: tests/identifiability.rs

tests/identifiability.rs:
