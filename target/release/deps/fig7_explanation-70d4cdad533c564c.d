/root/repo/target/release/deps/fig7_explanation-70d4cdad533c564c.d: crates/eval/src/bin/fig7_explanation.rs

/root/repo/target/release/deps/fig7_explanation-70d4cdad533c564c: crates/eval/src/bin/fig7_explanation.rs

crates/eval/src/bin/fig7_explanation.rs:
