/root/repo/target/release/deps/fig4_clusters-d342dd6528fafb0d.d: crates/eval/src/bin/fig4_clusters.rs

/root/repo/target/release/deps/fig4_clusters-d342dd6528fafb0d: crates/eval/src/bin/fig4_clusters.rs

crates/eval/src/bin/fig4_clusters.rs:
