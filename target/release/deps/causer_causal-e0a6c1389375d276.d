/root/repo/target/release/deps/causer_causal-e0a6c1389375d276.d: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

/root/repo/target/release/deps/libcauser_causal-e0a6c1389375d276.rlib: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

/root/repo/target/release/deps/libcauser_causal-e0a6c1389375d276.rmeta: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

crates/causal/src/lib.rs:
crates/causal/src/dag.rs:
crates/causal/src/graph_gen.rs:
crates/causal/src/mec.rs:
crates/causal/src/notears.rs:
crates/causal/src/pc.rs:
crates/causal/src/shd.rs:
crates/causal/src/stability.rs:
