/root/repo/target/debug/examples/explain_recommendations-73f6d7b2f5efdf99.d: examples/explain_recommendations.rs Cargo.toml

/root/repo/target/debug/examples/libexplain_recommendations-73f6d7b2f5efdf99.rmeta: examples/explain_recommendations.rs Cargo.toml

examples/explain_recommendations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
