/root/repo/target/debug/examples/dynamic_graph-56460fd318de88c7.d: examples/dynamic_graph.rs

/root/repo/target/debug/examples/dynamic_graph-56460fd318de88c7: examples/dynamic_graph.rs

examples/dynamic_graph.rs:
