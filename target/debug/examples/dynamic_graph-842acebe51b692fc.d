/root/repo/target/debug/examples/dynamic_graph-842acebe51b692fc.d: examples/dynamic_graph.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_graph-842acebe51b692fc.rmeta: examples/dynamic_graph.rs Cargo.toml

examples/dynamic_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
