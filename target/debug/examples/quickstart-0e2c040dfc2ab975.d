/root/repo/target/debug/examples/quickstart-0e2c040dfc2ab975.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0e2c040dfc2ab975: examples/quickstart.rs

examples/quickstart.rs:
