/root/repo/target/debug/examples/causal_discovery-78418b236fbd632c.d: examples/causal_discovery.rs

/root/repo/target/debug/examples/causal_discovery-78418b236fbd632c: examples/causal_discovery.rs

examples/causal_discovery.rs:
