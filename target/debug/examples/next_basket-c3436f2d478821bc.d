/root/repo/target/debug/examples/next_basket-c3436f2d478821bc.d: examples/next_basket.rs

/root/repo/target/debug/examples/next_basket-c3436f2d478821bc: examples/next_basket.rs

examples/next_basket.rs:
