/root/repo/target/debug/examples/explain_recommendations-5052622e5caee7f0.d: examples/explain_recommendations.rs

/root/repo/target/debug/examples/explain_recommendations-5052622e5caee7f0: examples/explain_recommendations.rs

examples/explain_recommendations.rs:
