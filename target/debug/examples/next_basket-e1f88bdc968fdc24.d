/root/repo/target/debug/examples/next_basket-e1f88bdc968fdc24.d: examples/next_basket.rs Cargo.toml

/root/repo/target/debug/examples/libnext_basket-e1f88bdc968fdc24.rmeta: examples/next_basket.rs Cargo.toml

examples/next_basket.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
