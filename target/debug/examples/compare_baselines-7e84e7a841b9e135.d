/root/repo/target/debug/examples/compare_baselines-7e84e7a841b9e135.d: examples/compare_baselines.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_baselines-7e84e7a841b9e135.rmeta: examples/compare_baselines.rs Cargo.toml

examples/compare_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
