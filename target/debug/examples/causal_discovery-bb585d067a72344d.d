/root/repo/target/debug/examples/causal_discovery-bb585d067a72344d.d: examples/causal_discovery.rs Cargo.toml

/root/repo/target/debug/examples/libcausal_discovery-bb585d067a72344d.rmeta: examples/causal_discovery.rs Cargo.toml

examples/causal_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
