/root/repo/target/debug/examples/compare_baselines-4c907c2678321a4d.d: examples/compare_baselines.rs

/root/repo/target/debug/examples/compare_baselines-4c907c2678321a4d: examples/compare_baselines.rs

examples/compare_baselines.rs:
