/root/repo/target/debug/deps/fig8_cases-fba931f186fd2103.d: crates/eval/src/bin/fig8_cases.rs

/root/repo/target/debug/deps/fig8_cases-fba931f186fd2103: crates/eval/src/bin/fig8_cases.rs

crates/eval/src/bin/fig8_cases.rs:
