/root/repo/target/debug/deps/proptests-010a8b2b45bd8304.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-010a8b2b45bd8304: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
