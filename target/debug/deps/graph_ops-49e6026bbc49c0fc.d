/root/repo/target/debug/deps/graph_ops-49e6026bbc49c0fc.d: crates/tensor/tests/graph_ops.rs

/root/repo/target/debug/deps/graph_ops-49e6026bbc49c0fc: crates/tensor/tests/graph_ops.rs

crates/tensor/tests/graph_ops.rs:
