/root/repo/target/debug/deps/causer_eval-c3843c8d1ba5a4a9.d: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_eval-c3843c8d1ba5a4a9.rmeta: crates/eval/src/lib.rs crates/eval/src/config.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/beyond_accuracy.rs crates/eval/src/experiments/falsification.rs crates/eval/src/experiments/efficiency.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig8.rs crates/eval/src/experiments/grid_search.rs crates/eval/src/experiments/identifiability.rs crates/eval/src/experiments/sweeps.rs crates/eval/src/experiments/table2.rs crates/eval/src/experiments/table4.rs crates/eval/src/experiments/table5.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/tables.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/config.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/beyond_accuracy.rs:
crates/eval/src/experiments/falsification.rs:
crates/eval/src/experiments/efficiency.rs:
crates/eval/src/experiments/fig3.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig8.rs:
crates/eval/src/experiments/grid_search.rs:
crates/eval/src/experiments/identifiability.rs:
crates/eval/src/experiments/sweeps.rs:
crates/eval/src/experiments/table2.rs:
crates/eval/src/experiments/table4.rs:
crates/eval/src/experiments/table5.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
