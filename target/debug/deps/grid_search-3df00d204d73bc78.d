/root/repo/target/debug/deps/grid_search-3df00d204d73bc78.d: crates/eval/src/bin/grid_search.rs

/root/repo/target/debug/deps/grid_search-3df00d204d73bc78: crates/eval/src/bin/grid_search.rs

crates/eval/src/bin/grid_search.rs:
