/root/repo/target/debug/deps/table4_overall-ee7932dfade8a163.d: crates/eval/src/bin/table4_overall.rs

/root/repo/target/debug/deps/table4_overall-ee7932dfade8a163: crates/eval/src/bin/table4_overall.rs

crates/eval/src/bin/table4_overall.rs:
