/root/repo/target/debug/deps/causer_causal-a144532816ef3359.d: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

/root/repo/target/debug/deps/libcauser_causal-a144532816ef3359.rlib: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

/root/repo/target/debug/deps/libcauser_causal-a144532816ef3359.rmeta: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs

crates/causal/src/lib.rs:
crates/causal/src/dag.rs:
crates/causal/src/graph_gen.rs:
crates/causal/src/mec.rs:
crates/causal/src/notears.rs:
crates/causal/src/pc.rs:
crates/causal/src/shd.rs:
crates/causal/src/stability.rs:
