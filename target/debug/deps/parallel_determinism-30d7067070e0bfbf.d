/root/repo/target/debug/deps/parallel_determinism-30d7067070e0bfbf.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-30d7067070e0bfbf.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
