/root/repo/target/debug/deps/serde-ae450a5350afaca7.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ae450a5350afaca7.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ae450a5350afaca7.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
