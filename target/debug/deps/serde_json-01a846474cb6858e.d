/root/repo/target/debug/deps/serde_json-01a846474cb6858e.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-01a846474cb6858e.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
