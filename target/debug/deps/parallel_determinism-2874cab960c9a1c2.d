/root/repo/target/debug/deps/parallel_determinism-2874cab960c9a1c2.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-2874cab960c9a1c2: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
