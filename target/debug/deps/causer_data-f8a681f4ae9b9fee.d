/root/repo/target/debug/deps/causer_data-f8a681f4ae9b9fee.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs

/root/repo/target/debug/deps/libcauser_data-f8a681f4ae9b9fee.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs

/root/repo/target/debug/deps/libcauser_data-f8a681f4ae9b9fee.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/explanation.rs:
crates/data/src/features.rs:
crates/data/src/persistence.rs:
crates/data/src/profiles.rs:
crates/data/src/sampling.rs:
crates/data/src/simulator.rs:
crates/data/src/stats.rs:
