/root/repo/target/debug/deps/causer_baselines-fb35834bae725aa5.d: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs

/root/repo/target/debug/deps/libcauser_baselines-fb35834bae725aa5.rlib: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs

/root/repo/target/debug/deps/libcauser_baselines-fb35834bae725aa5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bpr.rs:
crates/baselines/src/common.rs:
crates/baselines/src/gru4rec.rs:
crates/baselines/src/narm.rs:
crates/baselines/src/ncf.rs:
crates/baselines/src/sasrec.rs:
crates/baselines/src/stamp.rs:
crates/baselines/src/vtrnn.rs:
