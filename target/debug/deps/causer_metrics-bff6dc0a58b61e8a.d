/root/repo/target/debug/deps/causer_metrics-bff6dc0a58b61e8a.d: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

/root/repo/target/debug/deps/libcauser_metrics-bff6dc0a58b61e8a.rlib: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

/root/repo/target/debug/deps/libcauser_metrics-bff6dc0a58b61e8a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs

crates/metrics/src/lib.rs:
crates/metrics/src/diversity.rs:
crates/metrics/src/explanation.rs:
crates/metrics/src/ranking.rs:
