/root/repo/target/debug/deps/identifiability-c24e7cad3e3722fa.d: crates/eval/src/bin/identifiability.rs

/root/repo/target/debug/deps/identifiability-c24e7cad3e3722fa: crates/eval/src/bin/identifiability.rs

crates/eval/src/bin/identifiability.rs:
