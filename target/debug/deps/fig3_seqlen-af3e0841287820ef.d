/root/repo/target/debug/deps/fig3_seqlen-af3e0841287820ef.d: crates/eval/src/bin/fig3_seqlen.rs

/root/repo/target/debug/deps/fig3_seqlen-af3e0841287820ef: crates/eval/src/bin/fig3_seqlen.rs

crates/eval/src/bin/fig3_seqlen.rs:
