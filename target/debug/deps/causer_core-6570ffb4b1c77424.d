/root/repo/target/debug/deps/causer_core-6570ffb4b1c77424.d: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_core-6570ffb4b1c77424.rmeta: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attention.rs:
crates/core/src/causal_graph.rs:
crates/core/src/causer_rec.rs:
crates/core/src/clustering.rs:
crates/core/src/dynamic.rs:
crates/core/src/explain.rs:
crates/core/src/model.rs:
crates/core/src/persistence.rs:
crates/core/src/recommender.rs:
crates/core/src/rnn.rs:
crates/core/src/train.rs:
crates/core/src/variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
