/root/repo/target/debug/deps/causer_baselines-47ae9a6f15bedf4b.d: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_baselines-47ae9a6f15bedf4b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/bpr.rs crates/baselines/src/common.rs crates/baselines/src/gru4rec.rs crates/baselines/src/narm.rs crates/baselines/src/ncf.rs crates/baselines/src/sasrec.rs crates/baselines/src/stamp.rs crates/baselines/src/vtrnn.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/bpr.rs:
crates/baselines/src/common.rs:
crates/baselines/src/gru4rec.rs:
crates/baselines/src/narm.rs:
crates/baselines/src/ncf.rs:
crates/baselines/src/sasrec.rs:
crates/baselines/src/stamp.rs:
crates/baselines/src/vtrnn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
