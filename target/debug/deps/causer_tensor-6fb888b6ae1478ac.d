/root/repo/target/debug/deps/causer_tensor-6fb888b6ae1478ac.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

/root/repo/target/debug/deps/causer_tensor-6fb888b6ae1478ac: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/param.rs:
