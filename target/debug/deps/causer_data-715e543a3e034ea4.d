/root/repo/target/debug/deps/causer_data-715e543a3e034ea4.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_data-715e543a3e034ea4.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/explanation.rs crates/data/src/features.rs crates/data/src/persistence.rs crates/data/src/profiles.rs crates/data/src/sampling.rs crates/data/src/simulator.rs crates/data/src/stats.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/explanation.rs:
crates/data/src/features.rs:
crates/data/src/persistence.rs:
crates/data/src/profiles.rs:
crates/data/src/sampling.rs:
crates/data/src/simulator.rs:
crates/data/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
