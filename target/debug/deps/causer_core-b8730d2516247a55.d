/root/repo/target/debug/deps/causer_core-b8730d2516247a55.d: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libcauser_core-b8730d2516247a55.rlib: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libcauser_core-b8730d2516247a55.rmeta: crates/core/src/lib.rs crates/core/src/attention.rs crates/core/src/causal_graph.rs crates/core/src/causer_rec.rs crates/core/src/clustering.rs crates/core/src/dynamic.rs crates/core/src/explain.rs crates/core/src/model.rs crates/core/src/persistence.rs crates/core/src/recommender.rs crates/core/src/rnn.rs crates/core/src/train.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/attention.rs:
crates/core/src/causal_graph.rs:
crates/core/src/causer_rec.rs:
crates/core/src/clustering.rs:
crates/core/src/dynamic.rs:
crates/core/src/explain.rs:
crates/core/src/model.rs:
crates/core/src/persistence.rs:
crates/core/src/recommender.rs:
crates/core/src/rnn.rs:
crates/core/src/train.rs:
crates/core/src/variants.rs:
