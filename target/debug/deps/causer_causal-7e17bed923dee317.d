/root/repo/target/debug/deps/causer_causal-7e17bed923dee317.d: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_causal-7e17bed923dee317.rmeta: crates/causal/src/lib.rs crates/causal/src/dag.rs crates/causal/src/graph_gen.rs crates/causal/src/mec.rs crates/causal/src/notears.rs crates/causal/src/pc.rs crates/causal/src/shd.rs crates/causal/src/stability.rs Cargo.toml

crates/causal/src/lib.rs:
crates/causal/src/dag.rs:
crates/causal/src/graph_gen.rs:
crates/causal/src/mec.rs:
crates/causal/src/notears.rs:
crates/causal/src/pc.rs:
crates/causal/src/shd.rs:
crates/causal/src/stability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
