/root/repo/target/debug/deps/rand-041c2253d47f28cb.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-041c2253d47f28cb.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-041c2253d47f28cb.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
