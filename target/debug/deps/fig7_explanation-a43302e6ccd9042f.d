/root/repo/target/debug/deps/fig7_explanation-a43302e6ccd9042f.d: crates/eval/src/bin/fig7_explanation.rs

/root/repo/target/debug/deps/fig7_explanation-a43302e6ccd9042f: crates/eval/src/bin/fig7_explanation.rs

crates/eval/src/bin/fig7_explanation.rs:
