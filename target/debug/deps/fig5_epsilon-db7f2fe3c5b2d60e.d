/root/repo/target/debug/deps/fig5_epsilon-db7f2fe3c5b2d60e.d: crates/eval/src/bin/fig5_epsilon.rs

/root/repo/target/debug/deps/fig5_epsilon-db7f2fe3c5b2d60e: crates/eval/src/bin/fig5_epsilon.rs

crates/eval/src/bin/fig5_epsilon.rs:
