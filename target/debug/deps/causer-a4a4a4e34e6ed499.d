/root/repo/target/debug/deps/causer-a4a4a4e34e6ed499.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcauser-a4a4a4e34e6ed499.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
