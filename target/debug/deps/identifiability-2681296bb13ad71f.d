/root/repo/target/debug/deps/identifiability-2681296bb13ad71f.d: tests/identifiability.rs

/root/repo/target/debug/deps/identifiability-2681296bb13ad71f: tests/identifiability.rs

tests/identifiability.rs:
