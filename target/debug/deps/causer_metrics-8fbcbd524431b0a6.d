/root/repo/target/debug/deps/causer_metrics-8fbcbd524431b0a6.d: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_metrics-8fbcbd524431b0a6.rmeta: crates/metrics/src/lib.rs crates/metrics/src/diversity.rs crates/metrics/src/explanation.rs crates/metrics/src/ranking.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/diversity.rs:
crates/metrics/src/explanation.rs:
crates/metrics/src/ranking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
