/root/repo/target/debug/deps/table2_stats-ea37ffc916419bea.d: crates/eval/src/bin/table2_stats.rs

/root/repo/target/debug/deps/table2_stats-ea37ffc916419bea: crates/eval/src/bin/table2_stats.rs

crates/eval/src/bin/table2_stats.rs:
