/root/repo/target/debug/deps/kernels-ec4c81b2d67982c1.d: crates/tensor/tests/kernels.rs

/root/repo/target/debug/deps/kernels-ec4c81b2d67982c1: crates/tensor/tests/kernels.rs

crates/tensor/tests/kernels.rs:
