/root/repo/target/debug/deps/causer_bench-7cea2d09533fef14.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcauser_bench-7cea2d09533fef14.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcauser_bench-7cea2d09533fef14.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
