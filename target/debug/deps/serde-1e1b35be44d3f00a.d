/root/repo/target/debug/deps/serde-1e1b35be44d3f00a.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1e1b35be44d3f00a.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
