/root/repo/target/debug/deps/identifiability-cc1b1467445a18ab.d: tests/identifiability.rs Cargo.toml

/root/repo/target/debug/deps/libidentifiability-cc1b1467445a18ab.rmeta: tests/identifiability.rs Cargo.toml

tests/identifiability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
