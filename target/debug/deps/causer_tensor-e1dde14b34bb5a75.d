/root/repo/target/debug/deps/causer_tensor-e1dde14b34bb5a75.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

/root/repo/target/debug/deps/libcauser_tensor-e1dde14b34bb5a75.rlib: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

/root/repo/target/debug/deps/libcauser_tensor-e1dde14b34bb5a75.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/param.rs:
