/root/repo/target/debug/deps/fig6_temperature-8ed6bf670aa42f21.d: crates/eval/src/bin/fig6_temperature.rs

/root/repo/target/debug/deps/fig6_temperature-8ed6bf670aa42f21: crates/eval/src/bin/fig6_temperature.rs

crates/eval/src/bin/fig6_temperature.rs:
