/root/repo/target/debug/deps/table5_ablation-13d568f64133d660.d: crates/eval/src/bin/table5_ablation.rs

/root/repo/target/debug/deps/table5_ablation-13d568f64133d660: crates/eval/src/bin/table5_ablation.rs

crates/eval/src/bin/table5_ablation.rs:
