/root/repo/target/debug/deps/causer-b715389dba4c3f8f.d: src/lib.rs

/root/repo/target/debug/deps/libcauser-b715389dba4c3f8f.rlib: src/lib.rs

/root/repo/target/debug/deps/libcauser-b715389dba4c3f8f.rmeta: src/lib.rs

src/lib.rs:
