/root/repo/target/debug/deps/rand-f3f9192b4a94928e.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f3f9192b4a94928e.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
