/root/repo/target/debug/deps/serde_json-c6e5aa28b9bde947.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6e5aa28b9bde947.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6e5aa28b9bde947.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
