/root/repo/target/debug/deps/fig4_clusters-28cae262f5f8b6e8.d: crates/eval/src/bin/fig4_clusters.rs

/root/repo/target/debug/deps/fig4_clusters-28cae262f5f8b6e8: crates/eval/src/bin/fig4_clusters.rs

crates/eval/src/bin/fig4_clusters.rs:
