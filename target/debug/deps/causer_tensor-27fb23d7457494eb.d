/root/repo/target/debug/deps/causer_tensor-27fb23d7457494eb.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs Cargo.toml

/root/repo/target/debug/deps/libcauser_tensor-27fb23d7457494eb.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/init.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/parallel.rs crates/tensor/src/param.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/init.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/param.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
