/root/repo/target/debug/deps/beyond_accuracy-11f88b596562c9a6.d: crates/eval/src/bin/beyond_accuracy.rs

/root/repo/target/debug/deps/beyond_accuracy-11f88b596562c9a6: crates/eval/src/bin/beyond_accuracy.rs

crates/eval/src/bin/beyond_accuracy.rs:
