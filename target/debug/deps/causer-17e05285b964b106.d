/root/repo/target/debug/deps/causer-17e05285b964b106.d: src/lib.rs

/root/repo/target/debug/deps/causer-17e05285b964b106: src/lib.rs

src/lib.rs:
