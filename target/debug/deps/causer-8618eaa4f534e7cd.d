/root/repo/target/debug/deps/causer-8618eaa4f534e7cd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcauser-8618eaa4f534e7cd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
