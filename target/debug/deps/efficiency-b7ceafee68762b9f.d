/root/repo/target/debug/deps/efficiency-b7ceafee68762b9f.d: crates/eval/src/bin/efficiency.rs

/root/repo/target/debug/deps/efficiency-b7ceafee68762b9f: crates/eval/src/bin/efficiency.rs

crates/eval/src/bin/efficiency.rs:
