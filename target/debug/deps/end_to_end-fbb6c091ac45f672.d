/root/repo/target/debug/deps/end_to_end-fbb6c091ac45f672.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fbb6c091ac45f672: tests/end_to_end.rs

tests/end_to_end.rs:
