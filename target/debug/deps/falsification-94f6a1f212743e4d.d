/root/repo/target/debug/deps/falsification-94f6a1f212743e4d.d: crates/eval/src/bin/falsification.rs

/root/repo/target/debug/deps/falsification-94f6a1f212743e4d: crates/eval/src/bin/falsification.rs

crates/eval/src/bin/falsification.rs:
