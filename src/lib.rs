//! # causer
//!
//! Umbrella crate for the Rust reproduction of *"Sequential Recommendation
//! with User Causal Behavior Discovery"* (ICDE 2023). Re-exports the
//! workspace crates and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! - [`tensor`] — matrix kernels + reverse-mode autodiff substrate;
//! - [`causal`] — NOTEARS, DAGs, Markov equivalence;
//! - [`data`] — the causal behaviour simulator and dataset handling;
//! - [`metrics`] — F1@Z / NDCG@Z and explanation metrics;
//! - [`core`] — the Causer model itself;
//! - [`baselines`] — BPR, NCF, GRU4Rec, NARM, STAMP, SASRec, VTRNN, MMSARec;
//! - [`eval`] — the table/figure reproduction harness;
//! - [`serve`] — batched top-K serving: request batching queue, bitwise-exact
//!   batch scorer, model hot-reload (see `examples/serve_demo.rs`);
//! - [`obs`] — opt-in observability: metrics registry, span tracing, and
//!   structured JSONL events (enable with `CAUSER_OBS=1`; see
//!   `docs/OBSERVABILITY.md`).
//!
//! Quickstart: see `examples/quickstart.rs`, or:
//!
//! ```no_run
//! use causer::core::{CauserConfig, CauserRecommender, TrainConfig, SeqRecommender, evaluate};
//! use causer::data::{simulate, DatasetKind, DatasetProfile};
//!
//! let profile = DatasetProfile::paper(DatasetKind::Baby).scaled(0.1);
//! let sim = simulate(&profile, 42);
//! let split = sim.interactions.leave_last_out();
//! let cfg = CauserConfig::new(profile.num_users, profile.num_items, profile.feature_dim);
//! let mut model = CauserRecommender::new(cfg, sim.features.clone(), TrainConfig::default(), 7);
//! model.fit(&split);
//! println!("{:?}", evaluate(&model, &split.test, 5, 400));
//! ```

pub use causer_baselines as baselines;
pub use causer_causal as causal;
pub use causer_core as core;
pub use causer_data as data;
pub use causer_eval as eval;
pub use causer_metrics as metrics;
pub use causer_obs as obs;
pub use causer_serve as serve;
pub use causer_tensor as tensor;
